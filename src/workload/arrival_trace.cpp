#include "workload/arrival_trace.hpp"

#include <cmath>
#include <limits>

#include "util/rng.hpp"
#include "util/status.hpp"

namespace star::workload {

double ArrivalTrace::inter_arrival_ticks(std::size_t i) const {
  require(i < arrival_ticks.size(), "inter_arrival_ticks: index out of range");
  return i == 0 ? arrival_ticks[0] : arrival_ticks[i] - arrival_ticks[i - 1];
}

ArrivalTrace ArrivalTrace::from_gaps(const std::vector<double>& gaps) {
  ArrivalTrace trace;
  trace.arrival_ticks.reserve(gaps.size());
  double t = 0.0;
  for (const double gap : gaps) {
    require(gap >= 0.0 && std::isfinite(gap),
            "ArrivalTrace: gaps must be finite and non-negative");
    double next = t + gap;
    if (!(next > t)) {
      // A zero gap, or one absorbed by the addition (t >> gap), would
      // duplicate the previous tick; nudge to the next representable
      // double to keep the trace strictly increasing.
      next = std::nextafter(t, std::numeric_limits<double>::infinity());
    }
    t = next;
    trace.arrival_ticks.push_back(t);
  }
  return trace;
}

ArrivalTrace ArrivalTrace::generate(std::size_t n, ArrivalProcess process,
                                    double mean_inter_arrival_ticks,
                                    std::uint64_t seed) {
  require(mean_inter_arrival_ticks > 0.0,
          "ArrivalTrace: mean inter-arrival time must be positive");
  Rng rng(seed);
  std::vector<double> gaps;
  gaps.reserve(n);
  for (std::size_t i = 0; i < n; ++i) {
    double gap = 0.0;
    switch (process) {
      case ArrivalProcess::kPoisson:
        // Inverse-CDF of Exp(1/mean); uniform() < 1 so the log is finite.
        gap = -mean_inter_arrival_ticks * std::log(1.0 - rng.uniform());
        break;
      case ArrivalProcess::kUniform:
        gap = rng.uniform(0.0, 2.0 * mean_inter_arrival_ticks);
        break;
    }
    gaps.push_back(gap);
  }
  return from_gaps(gaps);
}

}  // namespace star::workload
