#include "workload/arrival_trace.hpp"

#include <cmath>

#include "util/rng.hpp"
#include "util/status.hpp"

namespace star::workload {

double ArrivalTrace::inter_arrival_ticks(std::size_t i) const {
  require(i < arrival_ticks.size(), "inter_arrival_ticks: index out of range");
  return i == 0 ? arrival_ticks[0] : arrival_ticks[i] - arrival_ticks[i - 1];
}

ArrivalTrace ArrivalTrace::generate(std::size_t n, ArrivalProcess process,
                                    double mean_inter_arrival_ticks,
                                    std::uint64_t seed) {
  require(mean_inter_arrival_ticks > 0.0,
          "ArrivalTrace: mean inter-arrival time must be positive");
  Rng rng(seed);
  ArrivalTrace trace;
  trace.arrival_ticks.reserve(n);
  double t = 0.0;
  for (std::size_t i = 0; i < n; ++i) {
    double gap = 0.0;
    switch (process) {
      case ArrivalProcess::kPoisson:
        // Inverse-CDF of Exp(1/mean); uniform() < 1 so the log is finite.
        gap = -mean_inter_arrival_ticks * std::log(1.0 - rng.uniform());
        break;
      case ArrivalProcess::kUniform:
        gap = rng.uniform(0.0, 2.0 * mean_inter_arrival_ticks);
        break;
    }
    t += gap;
    trace.arrival_ticks.push_back(t);
  }
  return trace;
}

}  // namespace star::workload
