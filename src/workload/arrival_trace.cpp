#include "workload/arrival_trace.hpp"

#include <cmath>
#include <limits>

#include "util/contract.hpp"
#include "util/rng.hpp"
#include "util/status.hpp"

namespace star::workload {

double ArrivalTrace::inter_arrival_ticks(std::size_t i) const {
  require(i < arrival_ticks.size(), "inter_arrival_ticks: index out of range");
  return i == 0 ? arrival_ticks[0] : arrival_ticks[i] - arrival_ticks[i - 1];
}

ArrivalTrace ArrivalTrace::from_gaps(const std::vector<double>& gaps) {
  ArrivalTrace trace;
  trace.arrival_ticks.reserve(gaps.size());
  double t = 0.0;
  for (const double gap : gaps) {
    require(gap >= 0.0 && std::isfinite(gap),
            "ArrivalTrace: gaps must be finite and non-negative");
    double next = t + gap;
    if (!(next > t)) {
      // A zero gap, or one absorbed by the addition (t >> gap), would
      // duplicate the previous tick; nudge to the next representable
      // double to keep the trace strictly increasing.
      next = std::nextafter(t, std::numeric_limits<double>::infinity());
    }
    // Post-condition of the nudge above — the documented invariant of
    // every constructor path: ticks strictly increase.
    STAR_CONTRACT(trace.arrival_ticks.empty() || next > trace.arrival_ticks.back(),
                  "ArrivalTrace: ticks must be strictly increasing");
    t = next;
    trace.arrival_ticks.push_back(t);
  }
  return trace;
}

void BurstShape::validate() const {
  require(mean_inter_arrival_ticks > 0.0 && std::isfinite(mean_inter_arrival_ticks),
          "BurstShape: mean inter-arrival time must be positive");
  require(period_ticks > 0.0 && std::isfinite(period_ticks),
          "BurstShape: period must be positive");
  require(duty > 0.0 && duty < 1.0, "BurstShape: duty must be in (0, 1)");
  require(intensity >= 1.0 && std::isfinite(intensity),
          "BurstShape: intensity must be >= 1");
  // The off-window rate (1 - duty*intensity)/(1 - duty) * r must stay
  // non-negative, i.e. the burst cannot carry more than all the traffic.
  require(duty * intensity <= 1.0,
          "BurstShape: duty * intensity must be <= 1 (off-window rate >= 0)");
}

double BurstShape::rate_at(double t) const {
  const double r = 1.0 / mean_inter_arrival_ticks;
  const double phase = std::fmod(t, period_ticks);
  if (phase < duty * period_ticks) {
    return intensity * r;
  }
  return r * (1.0 - duty * intensity) / (1.0 - duty);
}

void DiurnalShape::validate() const {
  require(mean_inter_arrival_ticks > 0.0 && std::isfinite(mean_inter_arrival_ticks),
          "DiurnalShape: mean inter-arrival time must be positive");
  require(period_ticks > 0.0 && std::isfinite(period_ticks),
          "DiurnalShape: period must be positive");
  require(amplitude >= 0.0 && amplitude < 1.0,
          "DiurnalShape: amplitude must be in [0, 1)");
}

double DiurnalShape::rate_at(double t) const {
  constexpr double kTwoPi = 6.283185307179586476925286766559;
  const double r = 1.0 / mean_inter_arrival_ticks;
  return r * (1.0 + amplitude * std::sin(kTwoPi * t / period_ticks));
}

namespace {

/// Lewis-Shedler thinning: candidate arrivals at the constant peak rate,
/// kept with probability rate(t)/peak — an exact draw from the
/// inhomogeneous process, deterministic in (n, rate fn, seed).
template <typename RateFn>
ArrivalTrace thin_to_trace(std::size_t n, double peak_rate, RateFn&& rate_at,
                           std::uint64_t seed) {
  Rng rng(seed);
  std::vector<double> gaps;
  gaps.reserve(n);
  double t = 0.0;
  double last_kept = 0.0;
  while (gaps.size() < n) {
    t += -std::log(1.0 - rng.uniform()) / peak_rate;
    if (rng.uniform() * peak_rate < rate_at(t)) {
      gaps.push_back(t - last_kept);
      last_kept = t;
    }
  }
  return ArrivalTrace::from_gaps(gaps);
}

}  // namespace

ArrivalTrace ArrivalTrace::generate_burst(std::size_t n, const BurstShape& shape,
                                          std::uint64_t seed) {
  shape.validate();
  return thin_to_trace(
      n, shape.peak_rate(), [&](double t) { return shape.rate_at(t); }, seed);
}

ArrivalTrace ArrivalTrace::generate_diurnal(std::size_t n,
                                            const DiurnalShape& shape,
                                            std::uint64_t seed) {
  shape.validate();
  return thin_to_trace(
      n, shape.peak_rate(), [&](double t) { return shape.rate_at(t); }, seed);
}

ArrivalTrace ArrivalTrace::generate(std::size_t n, ArrivalProcess process,
                                    double mean_inter_arrival_ticks,
                                    std::uint64_t seed) {
  require(mean_inter_arrival_ticks > 0.0,
          "ArrivalTrace: mean inter-arrival time must be positive");
  Rng rng(seed);
  std::vector<double> gaps;
  gaps.reserve(n);
  for (std::size_t i = 0; i < n; ++i) {
    double gap = 0.0;
    switch (process) {
      case ArrivalProcess::kPoisson:
        // Inverse-CDF of Exp(1/mean); uniform() < 1 so the log is finite.
        gap = -mean_inter_arrival_ticks * std::log(1.0 - rng.uniform());
        break;
      case ArrivalProcess::kUniform:
        gap = rng.uniform(0.0, 2.0 * mean_inter_arrival_ticks);
        break;
    }
    gaps.push_back(gap);
  }
  return from_gaps(gaps);
}

std::vector<ArrivalTrace> split_by_node(const ArrivalTrace& trace,
                                        const std::vector<std::size_t>& node_of,
                                        std::size_t num_nodes) {
  require(num_nodes >= 1, "split_by_node: num_nodes must be >= 1");
  require(node_of.size() == trace.size(),
          "split_by_node: node_of must match the trace size");
  std::vector<ArrivalTrace> per_node(num_nodes);
  for (std::size_t i = 0; i < trace.size(); ++i) {
    require(node_of[i] < num_nodes, "split_by_node: node id out of range");
    per_node[node_of[i]].arrival_ticks.push_back(trace.arrival_ticks[i]);
  }
  if constexpr (contracts_enabled()) {
    // Fan-out conservation: every arrival lands on exactly one node.
    std::size_t total = 0;
    for (const ArrivalTrace& t : per_node) {
      total += t.size();
    }
    STAR_CONTRACT(total == trace.size(),
                  "split_by_node: per-node sub-traces must conserve arrivals");
  }
  return per_node;
}

}  // namespace star::workload
