// Workload generators: batches of score rows from a dataset profile and
// synthetic Q/K/V tensors with controlled score statistics.
#pragma once

#include <vector>

#include "nn/tensor.hpp"
#include "util/rng.hpp"
#include "workload/dataset_profile.hpp"

namespace star::workload {

/// `rows` score rows of length `len` drawn from `profile`.
std::vector<std::vector<double>> score_batch(const DatasetProfile& profile,
                                             std::size_t rows, std::size_t len, Rng& rng);

/// Synthetic Q/K/V for one attention head such that the score matrix
/// QK^T/sqrt(d_k) has entries of standard deviation ~`score_std`.
struct QkvTriple {
  nn::Tensor q, k, v;
};
QkvTriple random_qkv(std::size_t seq_len, std::size_t d_k, double score_std, Rng& rng);

/// Largest |x_i - x_max| across a batch (the integer-bits driver).
double max_spread(const std::vector<std::vector<double>>& rows);

// --- multi-sequence batches (the BatchScheduler workload) ---
//
// Every sequence gets its own seed, derived up front from the batch seed by
// one sequential pass over a parent stream. Generation and execution of
// sequence i therefore depend only on (seed, i) — never on which thread
// runs it or in what order — which is what makes batched runs bit-identical
// to sequential ones.

/// Per-sequence seeds: seeds[i] fully determines sequence i (empty batch
/// yields an empty vector). The derivation rule is fixed API contract:
/// seeds[i] is the (i+1)-th raw draw of Rng(seed). Both the closed-batch
/// calls (core::BatchEncoderSim::run_*_batch) and the per-request serving
/// path (serve::StarServer, which uses sequence_seed(request_seed, 0))
/// derive engine seeds through this one rule, so fault-injection streams
/// stay reproducible across both APIs.
std::vector<std::uint64_t> sequence_seeds(std::size_t batch, std::uint64_t seed);

/// Single-element form of the rule above: the seed of sequence `index` in a
/// batch seeded with `seed` — sequence_seeds(n, seed)[index] for any
/// n > index, computed without materialising the vector (O(index) draws).
std::uint64_t sequence_seed(std::uint64_t seed, std::size_t index);

/// B independent synthetic attention inputs for one head.
std::vector<QkvTriple> qkv_batch(std::size_t batch, std::size_t seq_len,
                                 std::size_t d_k, double score_std,
                                 std::uint64_t seed);

/// B independent encoder-layer inputs (seq_len x d_model embeddings,
/// i.i.d. normal(0, embed_std)).
std::vector<nn::Tensor> embedding_batch(std::size_t batch, std::size_t seq_len,
                                        std::size_t d_model, double embed_std,
                                        std::uint64_t seed);

}  // namespace star::workload
