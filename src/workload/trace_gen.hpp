// Workload generators: batches of score rows from a dataset profile and
// synthetic Q/K/V tensors with controlled score statistics.
#pragma once

#include <vector>

#include "nn/tensor.hpp"
#include "util/rng.hpp"
#include "workload/dataset_profile.hpp"

namespace star::workload {

/// `rows` score rows of length `len` drawn from `profile`.
std::vector<std::vector<double>> score_batch(const DatasetProfile& profile,
                                             std::size_t rows, std::size_t len, Rng& rng);

/// Synthetic Q/K/V for one attention head such that the score matrix
/// QK^T/sqrt(d_k) has entries of standard deviation ~`score_std`.
struct QkvTriple {
  nn::Tensor q, k, v;
};
QkvTriple random_qkv(std::size_t seq_len, std::size_t d_k, double score_std, Rng& rng);

/// Largest |x_i - x_max| across a batch (the integer-bits driver).
double max_spread(const std::vector<std::vector<double>>& rows);

}  // namespace star::workload
