// Synthetic attention-score profiles for the paper's three datasets.
//
// The paper analyses the range of softmax inputs x_i (BERT-base attention
// scores) on CNEWS, MRPC and CoLA to size the engine's fixed-point format.
// The proprietary score dumps are unavailable, so each dataset is replaced
// by a generator whose two behaviour-carrying statistics are modelled
// explicitly (see DESIGN.md §1):
//
//   * spread  — how far below x_max the background scores sit. This fixes
//     the required *integer* bits (CNEWS/MRPC spreads reach past 32 -> 6
//     bits; CoLA stays under 32 -> 5 bits).
//   * top-gap — how close the runner-up scores are to x_max. Near-ties make
//     the softmax output sensitive to quantisation, which fixes the
//     required *fraction* bits (MRPC's paraphrase pairs produce near-ties
//     -> 3 bits; CNEWS/CoLA are peaked -> 2 bits).
#pragma once

#include <cstddef>
#include <cstdint>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

#include "fxp/qformat.hpp"
#include "util/rng.hpp"

namespace star::workload {

/// The serving-layer name of a request's dataset. It selects which
/// CAM/LUT image (operand QFormat) the softmax engine must have resident —
/// a COST-ACCOUNTING property only: the functional datapath always runs in
/// the engine's configured format, so the payload of a request is
/// dataset-invariant (the determinism contract in serve/request.hpp).
/// kDefault means "whatever format the model was configured with".
enum class Dataset : std::uint8_t {
  kDefault = 0,
  kCnews,  ///< Q6.2u (8-bit) operands
  kMrpc,   ///< Q6.3u (9-bit) operands
  kCola,   ///< Q5.2u (7-bit) operands
};

[[nodiscard]] const char* to_string(Dataset d);
/// Parse "default" / "cnews" / "mrpc" / "cola" (case-sensitive).
[[nodiscard]] std::optional<Dataset> parse_dataset(std::string_view name);

/// The operand format a named dataset's LUT/CAM image encodes; kDefault
/// resolves to `default_format` (the model's configured format).
[[nodiscard]] const fxp::QFormat& format_for(Dataset d,
                                             const fxp::QFormat& default_format);

/// A discrete request-length distribution: the probability that a request
/// of this dataset arrives with `len` tokens. This is the serving-side
/// length axis: the open-loop drivers sample per-request sequence lengths
/// from it, and the length-bucketed dynamic batcher's bucket edges are
/// chosen against it. Unlike Dataset (accounting-only), length DOES
/// determine a request's payload — the input tensor itself is
/// len x d_model — but the batcher's treatment of length (bucketing,
/// padding) is scheduling/accounting-only; see serve/length_buckets.hpp.
struct LengthHistogram {
  struct Bin {
    std::int64_t len = 0;  ///< sequence length of this bin (tokens)
    double weight = 0.0;   ///< relative probability mass (normalised on use)
  };
  /// Strictly increasing lengths (>= 2), positive finite weights.
  std::vector<Bin> bins;

  /// Throws InvalidArgument unless the invariants above hold and the
  /// histogram is non-empty.
  void validate() const;

  [[nodiscard]] std::int64_t min_len() const;
  [[nodiscard]] std::int64_t max_len() const;
  /// Weight-averaged sequence length.
  [[nodiscard]] double mean_len() const;
  /// One weighted draw (exactly one rng.uniform() consumed per call, so a
  /// sampled length stream is reproducible position by position).
  [[nodiscard]] std::int64_t sample(Rng& rng) const;

  /// Degenerate single-bin histogram: every request has `len` tokens.
  static LengthHistogram fixed(std::int64_t len);
};

/// `n` per-request lengths drawn from `hist` by one Rng(seed) stream.
/// Deterministic in (hist, n, seed); lengths[i] depends only on the draws
/// before it, never on how the lengths are later consumed.
std::vector<std::int64_t> sample_lengths(const LengthHistogram& hist,
                                         std::size_t n, std::uint64_t seed);

/// The length histogram of a serving-layer dataset name: the matching
/// profile's `length_hist` for CNEWS/MRPC/CoLA; kDefault blends the three
/// (the mixed-traffic shape an undifferentiated front door sees).
[[nodiscard]] LengthHistogram length_histogram_for(Dataset d);

struct DatasetProfile {
  std::string name;

  /// Request lengths this dataset's traffic arrives with. Modelled, not
  /// measured (the corpora themselves are unavailable — see the file
  /// comment): CNEWS is document-level news classification (long, skewed
  /// toward the 256-384 band), MRPC is sentence *pairs* (mid lengths),
  /// CoLA is single short sentences.
  LengthHistogram length_hist;

  // Background scores: x_max - x_bg ~ |N(bg_depth, bg_sigma)|, clamped to
  // [min_spread_floor, max_spread].
  double bg_depth = 35.0;
  double bg_sigma = 6.0;
  double max_spread = 60.0;

  // Contenders: `contenders` scores sit close to the top, at gaps
  // |N(gap_mean, gap_sigma)| below x_max.
  int contenders = 2;
  double gap_mean = 1.5;
  double gap_sigma = 0.8;

  /// Expected bitwidth result from the paper (for EXPERIMENTS.md checks).
  int expected_int_bits = 6;
  int expected_frac_bits = 2;

  /// One score row of length `len` (x_max itself is placed at a random
  /// position; values are absolute logits with a random row offset, since
  /// softmax is shift-invariant the offset exercises the x - x_max path).
  [[nodiscard]] std::vector<double> sample_row(std::size_t len, Rng& rng) const;

  /// The paper's three datasets.
  static DatasetProfile cnews();
  static DatasetProfile mrpc();
  static DatasetProfile cola();
  static std::vector<DatasetProfile> all();
};

}  // namespace star::workload
