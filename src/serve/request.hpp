// Request/response types of the asynchronous serving front end.
//
// A request carries exactly what determines its payload: the input data and
// a per-request `run_seed`. The response a caller's future resolves to is
// bit-identical to a solo closed-batch run of the same input with the same
// seed (see the seed-derivation rule in core/batch_encoder.hpp) — batch
// placement never leaks into the payload. Everything timing-related lands
// in the attached RequestStats, which IS placement-dependent by design.
#pragma once

#include <cstddef>
#include <cstdint>
#include <stdexcept>
#include <string>

#include "core/accelerator.hpp"
#include "core/functional_attention.hpp"
#include "nn/tensor.hpp"
#include "workload/trace_gen.hpp"

namespace star::serve {

/// Default per-request seed; matches the closed-batch calls' default
/// `run_seed` so an unseeded request reproduces an unseeded solo batch.
inline constexpr std::uint64_t kDefaultRunSeed = 0x5EED;

/// Per-request observability: where the request landed and how long each
/// serving phase took. Wall-clock fields vary run to run; only the payload
/// is covered by the determinism contract.
struct RequestStats {
  std::uint64_t request_id = 0;  ///< admission order, unique per server
  std::uint64_t batch_id = 0;    ///< dispatch order of the formed batch
  std::size_t batch_size = 0;    ///< how many requests shared the batch
  double queue_wait_s = 0.0;     ///< admission -> dispatch
  double service_s = 0.0;        ///< dispatch -> completion (compute)

  // Cluster placement: which node (chip instance) served the request
  // (ServerOptions::node_id — 0 on a standalone server) and the modelled
  // front-end -> node round-trip transport bill the router charged
  // (hw::HostLink; 0 when the request was submitted to the node directly).
  // Transport, like residency, is ACCOUNTING-ONLY: it never delays or
  // alters the payload.
  std::uint32_t node = 0;
  double transport_us = 0.0;

  // What the request asked for (mixed-depth / mixed-shard traffic
  // attribution; 0 on request kinds without the knob, e.g. attention).
  std::int64_t num_layers = 0;
  std::int64_t num_shards = 0;

  // Length placement: every request kind has a sequence length (encoder:
  // input rows, attention: q rows, analytic: the seq_len field), and the
  // dynamic batcher buckets on it. `seq_len` is the request's EFFECTIVE
  // slot width; `padded_len` is what its batch slot was billed at (the
  // bucket edge, or the batch max under pad-to-max) — padding never
  // executes, so padded_len - seq_len is pure accounting waste. `bucket`
  // is the batcher queue the request coalesced in (0 in pad-to-max mode;
  // the overflow queue is the last index in bucketed mode).
  std::int64_t seq_len = 0;
  std::int64_t padded_len = 0;
  std::size_t bucket = 0;

  // Device-residency accounting of THIS request (encoder requests only):
  // modelled programming time charged for images that were not resident,
  // and the hit/miss attribution behind it. Which request of a batch pays
  // a shared cold miss depends on dispatch interleaving — totals across a
  // trace are deterministic whenever the residency capacity is not
  // exceeded, per-request attribution is not.
  double programming_us = 0.0;
  std::uint64_t lut_hits = 0;
  std::uint64_t lut_misses = 0;
  std::uint64_t weight_hits = 0;
  std::uint64_t weight_misses = 0;
};

struct EncoderRequest {
  nn::Tensor input;  ///< seq_len x d_model embeddings
  std::uint64_t run_seed = kDefaultRunSeed;
  /// Chained encoder layers to run (multi-layer pipelined stack). Must be
  /// in [1, model.stack_depth()]; a violation resolves the future with
  /// InvalidArgument. Part of the determinism contract: the payload is a
  /// function of (input, run_seed, num_layers).
  std::int64_t num_layers = 1;
  /// Crossbar shards the request runs on. Must be in
  /// [1, model.config().num_shards] (the provisioned bound); a violation
  /// resolves the future with InvalidArgument. Sharding is
  /// payload-invariant (the inter-shard partial-sum merge is an exact
  /// integer reduce), so the payload stays a function of
  /// (input, run_seed, num_layers) for every admissible shard count.
  std::int64_t num_shards = 1;
  /// The dataset whose softmax CAM/LUT image must be resident (selects the
  /// operand QFormat: CNEWS/MRPC/CoLA, or kDefault = the model's configured
  /// format). ACCOUNTING-ONLY and payload-invariant by construction — the
  /// datapath always computes in the configured format; a non-resident
  /// image charges reprogramming cost into this request's RequestStats and
  /// the server's residency counters. The payload therefore remains a
  /// function of (input, run_seed, num_layers) under mixed-dataset traffic.
  workload::Dataset dataset = workload::Dataset::kDefault;
  /// Modelled front-end -> node transport bill, stamped by the cluster
  /// router before submission (serve::Cluster); leave 0 when submitting to
  /// a StarServer directly. Echoed into RequestStats.transport_us —
  /// accounting-only, payload-invariant.
  double transport_us = 0.0;
};

struct EncoderResponse {
  nn::Tensor output;
  RequestStats stats;
};

struct AttentionRequest {
  workload::QkvTriple qkv;
  std::uint64_t run_seed = kDefaultRunSeed;
  /// See EncoderRequest::transport_us.
  double transport_us = 0.0;
};

struct AttentionResponse {
  core::FunctionalAttentionResult result;
  RequestStats stats;
};

struct AnalyticRequest {
  std::int64_t seq_len = 0;
  /// The dataset whose softmax CAM/LUT image the analytic request needs
  /// resident (see EncoderRequest::dataset — same accounting-only
  /// semantics). A non-resident image charges its programming bill into
  /// the response's latency/energy (the EncoderRunResult composition
  /// convention) and RequestStats; the steady-state warm result is
  /// bit-identical to the pre-dataset analytic path and is served from the
  /// model's memoized CostCache. As with encoder programming charges,
  /// WHICH request of a concurrent burst pays a shared cold miss is
  /// interleaving-dependent; totals across a trace are deterministic.
  workload::Dataset dataset = workload::Dataset::kDefault;
  /// See EncoderRequest::transport_us.
  double transport_us = 0.0;
};

struct AnalyticResponse {
  core::AttentionRunResult result;
  RequestStats stats;
};

/// Base of every admission-control failure delivered through a future.
class AdmissionError : public std::runtime_error {
 public:
  explicit AdmissionError(const std::string& what) : std::runtime_error(what) {}
};

/// The bounded queue was full under AdmissionPolicy::kReject, or the
/// request arrived after shutdown().
class RejectedError : public AdmissionError {
 public:
  explicit RejectedError(const std::string& what) : AdmissionError(what) {}
};

/// This (oldest-pending) request was evicted to admit a newer one under
/// AdmissionPolicy::kShedOldest.
class ShedError : public AdmissionError {
 public:
  explicit ShedError(const std::string& what) : AdmissionError(what) {}
};

}  // namespace star::serve
