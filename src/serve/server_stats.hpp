// Aggregate serving metrics: admission counters, queueing/service latency
// distributions and batch occupancy, exposed as an immutable snapshot.
#pragma once

#include <cstddef>
#include <cstdint>
#include <vector>

#include "serve/request.hpp"
#include "util/rng.hpp"

namespace star::serve {

/// Point-in-time aggregate view of a StarServer. At the instant of the
/// snapshot, counters obey submitted == admitted + rejected + (submitters
/// still blocked on kBlock admission) and admitted == completed + failed +
/// shed + (still pending/in flight).
struct ServerStats {
  std::uint64_t submitted = 0;   ///< submit() calls (including refused ones)
  std::uint64_t admitted = 0;    ///< entered the pending queue
  std::uint64_t rejected = 0;    ///< refused at admission (kReject / shutdown)
  std::uint64_t shed = 0;        ///< evicted from the queue (kShedOldest)
  std::uint64_t completed = 0;   ///< future resolved with a value
  std::uint64_t failed = 0;      ///< future resolved with a compute exception
  std::uint64_t batches = 0;     ///< batches dispatched to the scheduler

  // Latency distributions over completed + failed requests, seconds. Means
  // are exact running sums. The p99s are nearest-rank percentiles of the
  // fixed-size latency reservoir: exact while the server has seen at most
  // StatsAccumulator::kMaxLatencySamples completions, and thereafter an
  // estimate over a uniform *reservoir sample* of all completions so far —
  // not over every completion.
  double queue_wait_mean_s = 0.0;
  double queue_wait_p99_s = 0.0;
  double service_mean_s = 0.0;
  double service_p99_s = 0.0;

  // Formed-batch occupancy (requests per dispatched batch).
  double batch_occupancy_mean = 0.0;
  std::size_t batch_occupancy_max = 0;

  // Per-request shape breakdown over completed + failed requests that
  // carried the knob (num_layers >= 1, i.e. encoder requests) — makes
  // mixed-depth / mixed-shard traffic attributable from the snapshot.
  double num_layers_mean = 0.0;
  std::int64_t num_layers_max = 0;
  double num_shards_mean = 0.0;
  std::int64_t num_shards_max = 0;

  // Device residency over completed + failed requests: LUT-image and
  // weight-upload hit/miss totals and the modelled programming time they
  // charged. programming_time_share relates that modelled reprogramming
  // stall to the observed wall-clock service time (programming / (service
  // + programming)) — zero on warm single-dataset traffic.
  std::uint64_t lut_hits = 0;
  std::uint64_t lut_misses = 0;
  std::uint64_t weight_hits = 0;
  std::uint64_t weight_misses = 0;
  double programming_us_total = 0.0;
  double programming_time_share = 0.0;
};

/// Mutable accumulator behind ServerStats. NOT internally synchronised:
/// StarServer guards every call with its own mutex.
///
/// Memory is bounded for arbitrarily long-lived servers: means come from
/// exact running sums, while percentiles come from a fixed-size uniform
/// reservoir (Vitter's Algorithm R) over all completions so far.
class StatsAccumulator {
 public:
  /// Latency samples kept for percentile estimation (16 B per slot).
  static constexpr std::size_t kMaxLatencySamples = 1 << 16;

  void on_submitted() { ++submitted_; }
  void on_admitted() { ++admitted_; }
  void on_rejected() { ++rejected_; }
  void on_shed() { ++shed_; }
  void on_batch(std::size_t occupancy);
  /// Record one resolved request. Reads the phase timings, the request
  /// shape (num_layers/num_shards, when >= 1) and the residency charges
  /// from `rs`.
  void on_done(const RequestStats& rs, bool ok);

  [[nodiscard]] ServerStats snapshot() const;

 private:
  std::uint64_t submitted_ = 0, admitted_ = 0, rejected_ = 0, shed_ = 0;
  std::uint64_t completed_ = 0, failed_ = 0, batches_ = 0;
  std::uint64_t occupancy_sum_ = 0;
  std::size_t occupancy_max_ = 0;
  double queue_wait_sum_s_ = 0.0;
  double service_sum_s_ = 0.0;
  // Shape breakdown (encoder requests: num_layers >= 1).
  std::uint64_t shaped_requests_ = 0;
  std::uint64_t num_layers_sum_ = 0;
  std::int64_t num_layers_max_ = 0;
  std::uint64_t num_shards_sum_ = 0;
  std::int64_t num_shards_max_ = 0;
  // Residency accounting.
  std::uint64_t lut_hits_ = 0, lut_misses_ = 0;
  std::uint64_t weight_hits_ = 0, weight_misses_ = 0;
  double programming_sum_us_ = 0.0;
  std::vector<double> queue_wait_s_;  ///< reservoir, paired by index
  std::vector<double> service_s_;
  Rng reservoir_rng_{0x57A75E54};
};

/// p in [0, 1] quantile of `samples` (nearest-rank); 0 when empty. Selects
/// via an index buffer, so `samples` itself is neither copied nor reordered.
double percentile(const std::vector<double>& samples, double p);

}  // namespace star::serve
