// Aggregate serving metrics: admission counters, queueing/service latency
// distributions and batch occupancy, exposed as an immutable snapshot.
#pragma once

#include <cstddef>
#include <cstdint>
#include <vector>

#include "serve/request.hpp"
#include "util/rng.hpp"

namespace star::serve {

/// Point-in-time aggregate view of a StarServer. At the instant of the
/// snapshot, counters obey submitted == admitted + rejected + (submitters
/// still blocked on kBlock admission) and admitted == completed + failed +
/// shed + (still pending/in flight).
struct ServerStats {
  std::uint64_t submitted = 0;   ///< submit() calls (including refused ones)
  std::uint64_t admitted = 0;    ///< entered the pending queue
  std::uint64_t rejected = 0;    ///< refused at admission (kReject / shutdown)
  std::uint64_t shed = 0;        ///< evicted from the queue (kShedOldest)
  std::uint64_t completed = 0;   ///< future resolved with a value
  std::uint64_t failed = 0;      ///< future resolved with a compute exception
  std::uint64_t batches = 0;     ///< batches dispatched to the scheduler

  // Latency distributions over completed + failed requests, seconds. Means
  // are exact running sums. The p99s are nearest-rank percentiles of the
  // fixed-size latency reservoir: exact while the server has seen at most
  // StatsAccumulator::kMaxLatencySamples completions, and thereafter an
  // estimate over a uniform *reservoir sample* of all completions so far —
  // not over every completion.
  double queue_wait_mean_s = 0.0;
  double queue_wait_p99_s = 0.0;
  double service_mean_s = 0.0;
  double service_p99_s = 0.0;

  // Formed-batch occupancy (requests per dispatched batch). This counts
  // REQUEST SLOTS only and says nothing about padding; the token-level
  // split below is the honest utilisation measure.
  double batch_occupancy_mean = 0.0;
  std::size_t batch_occupancy_max = 0;

  // Token-level occupancy split. A batch of B requests padded to P tokens
  // dispatches a B x P rectangle of token-slots against a bucket capacity
  // of max_batch x P:
  //   * padded_tokens    = sum over batches of B * P — every slot the
  //     hardware was billed for, padding included.
  //   * effective_tokens = sum over batches of the members' true seq_lens —
  //     the slots that carried real work (padded slots never execute).
  //   * padded_occupancy    = padded_tokens / capacity_tokens
  //   * effective_occupancy = effective_tokens / capacity_tokens
  //     (capacity_tokens = sum of max_batch * P), so effective <=
  //     padded <= 1 always, with equality iff no padding at all.
  //   * padding_waste = 1 - effective_tokens / padded_tokens — the padding
  //     fraction of DISPATCHED work: exactly 0 on fixed-length traffic,
  //     and the figure length-bucketed batching exists to shrink.
  // Before this split, `batch_occupancy_mean` silently counted padded
  // slots as useful work; these fields distinguish them.
  std::uint64_t effective_tokens = 0;
  std::uint64_t padded_tokens = 0;
  std::uint64_t capacity_tokens = 0;
  double padded_occupancy = 0.0;
  double effective_occupancy = 0.0;
  double padding_waste = 0.0;

  // Request-length breakdown over completed + failed requests.
  double seq_len_mean = 0.0;
  std::int64_t seq_len_max = 0;

  /// Per batcher-queue view of the same accounting (index order == queue
  /// order: configured buckets first, then the overflow / pad-to-max
  /// queue). `edge` is the bucket's padded length (0 = pads to its own
  /// batch max). Sums across buckets equal the totals above.
  struct BucketStats {
    std::int64_t edge = 0;
    std::uint64_t requests = 0;  ///< completed + failed from this queue
    std::uint64_t batches = 0;
    double queue_wait_mean_s = 0.0;
    double batch_occupancy_mean = 0.0;
    std::uint64_t effective_tokens = 0;
    std::uint64_t padded_tokens = 0;
    double padding_waste = 0.0;
  };
  std::vector<BucketStats> per_bucket;

  // Per-request shape breakdown over completed + failed requests that
  // carried the knob (num_layers >= 1, i.e. encoder requests) — makes
  // mixed-depth / mixed-shard traffic attributable from the snapshot.
  double num_layers_mean = 0.0;
  std::int64_t num_layers_max = 0;
  double num_shards_mean = 0.0;
  std::int64_t num_shards_max = 0;

  // Device residency over completed + failed requests: LUT-image and
  // weight-upload hit/miss totals and the modelled programming time they
  // charged. programming_time_share relates that modelled reprogramming
  // stall to the observed wall-clock service time (programming / (service
  // + programming)) — zero on warm single-dataset traffic.
  std::uint64_t lut_hits = 0;
  std::uint64_t lut_misses = 0;
  std::uint64_t weight_hits = 0;
  std::uint64_t weight_misses = 0;
  double programming_us_total = 0.0;
  double programming_time_share = 0.0;

  // Cluster transport over completed + failed requests: the modelled
  // front-end -> node hop the router billed (hw::HostLink round trip).
  // Zero on a standalone server — requests submitted directly carry no
  // transport charge.
  double transport_us_total = 0.0;
  double transport_us_mean = 0.0;

  // Memoized analytic cost cache (core::CostCache) of the model behind
  // this server, snapshotted by StarServer::stats() at the same instant as
  // the accumulator copy. Model-lifetime counters (the model may predate
  // and outlive the server); conservation: lookups == hits + misses +
  // bypasses (bypasses = cold-keyed lookups, computed fresh by design —
  // see core/cost_cache.hpp). hit_rate = hits / lookups.
  std::uint64_t cost_cache_lookups = 0;
  std::uint64_t cost_cache_hits = 0;
  std::uint64_t cost_cache_misses = 0;
  std::uint64_t cost_cache_bypasses = 0;
  double cost_cache_hit_rate = 0.0;
};

/// Mutable accumulator behind ServerStats. NOT internally synchronised:
/// StarServer guards every call with its own mutex.
///
/// Memory is bounded for arbitrarily long-lived servers: means come from
/// exact running sums, while percentiles come from a fixed-size uniform
/// reservoir (Vitter's Algorithm R) over all completions so far.
class StatsAccumulator {
 public:
  /// Latency samples kept for percentile estimation (16 B per slot).
  static constexpr std::size_t kMaxLatencySamples = 1 << 16;

  /// Declare the batcher's queue layout (one edge per queue, 0 = pads to
  /// batch max) so per-bucket accounting has stable slots. Optional: the
  /// default layout is the single pad-to-max queue.
  void configure_buckets(std::vector<std::int64_t> edges);

  void on_submitted() { ++submitted_; }
  void on_admitted() { ++admitted_; }
  void on_rejected() { ++rejected_; }
  void on_shed() { ++shed_; }
  /// Record one dispatched batch: `occupancy` request slots from queue
  /// `bucket`, carrying `effective_tokens` real tokens inside a
  /// `padded_tokens` rectangle out of `capacity_tokens` of bucket capacity.
  void on_batch(std::size_t occupancy, std::size_t bucket,
                std::uint64_t effective_tokens, std::uint64_t padded_tokens,
                std::uint64_t capacity_tokens);
  /// Record one resolved request. Reads the phase timings, the request
  /// shape (seq_len/bucket always; num_layers/num_shards when >= 1) and
  /// the residency charges from `rs`.
  void on_done(const RequestStats& rs, bool ok);

  [[nodiscard]] ServerStats snapshot() const;

  // Fleet-merge access (serve::Cluster). Percentiles of a MERGED view must
  // NOT average per-node p99s — a p99 is not linear, and averaging the
  // quantiles of N skewed nodes can sit far below the fleet's true tail.
  // Instead the cluster concatenates the nodes' latency reservoirs and
  // index-selects over the union with serve::percentile. Sampling
  // semantics of that merge: each node's reservoir is a uniform sample of
  // THAT node's completions (exact until kMaxLatencySamples, Algorithm R
  // after), so the concatenation weights node n by
  // min(node_n_completions, kMaxLatencySamples) rather than by its exact
  // completion count. Until any node overflows its reservoir the merged
  // percentile is exact over every fleet completion; past that point it is
  // an estimate that can under-weight very hot nodes' tails — the same
  // approximation each node's own p99 already makes, never the
  // averaging-of-quantiles error.
  [[nodiscard]] const std::vector<double>& queue_wait_samples() const {
    return queue_wait_s_;
  }
  [[nodiscard]] const std::vector<double>& service_samples() const {
    return service_s_;
  }

 private:
  /// Per-queue accounting slot (see ServerStats::BucketStats).
  struct BucketAccum {
    std::int64_t edge = 0;
    std::uint64_t requests = 0;
    std::uint64_t batches = 0;
    std::uint64_t occupancy_sum = 0;
    double queue_wait_sum_s = 0.0;
    std::uint64_t effective_tokens = 0;
    std::uint64_t padded_tokens = 0;
  };

  BucketAccum& bucket_slot(std::size_t bucket);

  std::uint64_t submitted_ = 0, admitted_ = 0, rejected_ = 0, shed_ = 0;
  std::uint64_t completed_ = 0, failed_ = 0, batches_ = 0;
  std::uint64_t occupancy_sum_ = 0;
  std::size_t occupancy_max_ = 0;
  double queue_wait_sum_s_ = 0.0;
  double service_sum_s_ = 0.0;
  // Token-level occupancy split (padded vs effective vs capacity).
  std::uint64_t effective_tokens_ = 0;
  std::uint64_t padded_tokens_ = 0;
  std::uint64_t capacity_tokens_ = 0;
  std::uint64_t seq_len_sum_ = 0;
  std::int64_t seq_len_max_ = 0;
  std::vector<BucketAccum> buckets_{BucketAccum{}};  ///< default: one pad-to-max queue
  // Shape breakdown (encoder requests: num_layers >= 1).
  std::uint64_t shaped_requests_ = 0;
  std::uint64_t num_layers_sum_ = 0;
  std::int64_t num_layers_max_ = 0;
  std::uint64_t num_shards_sum_ = 0;
  std::int64_t num_shards_max_ = 0;
  // Residency accounting.
  std::uint64_t lut_hits_ = 0, lut_misses_ = 0;
  std::uint64_t weight_hits_ = 0, weight_misses_ = 0;
  double programming_sum_us_ = 0.0;
  double transport_sum_us_ = 0.0;
  std::vector<double> queue_wait_s_;  ///< reservoir, paired by index
  std::vector<double> service_s_;
  Rng reservoir_rng_{0x57A75E54};
};

/// p in [0, 1] quantile of `samples` (nearest-rank); 0 when empty. Selects
/// via an index buffer, so `samples` itself is neither copied nor reordered.
double percentile(const std::vector<double>& samples, double p);

/// Contract audit of one accumulator's latency reservoirs (see the
/// fleet-merge notes above): the queue-wait and service reservoirs are
/// index-paired (same size — each slot is one request's pair), never exceed
/// kMaxLatencySamples, and never hold more samples than requests resolved.
/// Called by StatsAccumulator::snapshot() and per node by Cluster::stats();
/// a no-op in builds without STAR_CONTRACT (contracts_enabled() == false).
void audit_reservoir_pair(const std::vector<double>& queue_wait,
                          const std::vector<double>& service,
                          std::uint64_t done);

}  // namespace star::serve
