#include "serve/cluster.hpp"

#include <algorithm>
#include <limits>
#include <utility>

#include "util/contract.hpp"
#include "util/status.hpp"
#include "workload/dataset_profile.hpp"
#include "xbar/residency.hpp"

namespace star::serve {

namespace {

/// Payload footprint of one tensor on the host link (double-precision
/// embeddings, the simulation's native element).
std::uint64_t tensor_bytes(const nn::Tensor& t) {
  return static_cast<std::uint64_t>(t.rows()) *
         static_cast<std::uint64_t>(t.cols()) * sizeof(double);
}

/// Round-robin: node (i mod N). Blind to state, perfectly even long-run.
class RoundRobinPolicy final : public RoutingPolicy {
 public:
  std::size_t route(const std::vector<NodeSnapshot>& nodes) override {
    const std::size_t pick = next_ % nodes.size();
    ++next_;
    return pick;
  }

 private:
  std::size_t next_ = 0;
};

/// The node with the shallowest pending queue; ties break to the lowest
/// node index so routing is deterministic for a given snapshot.
std::size_t least_loaded_of(const std::vector<NodeSnapshot>& nodes) {
  std::size_t best = 0;
  for (std::size_t i = 1; i < nodes.size(); ++i) {
    if (nodes[i].queue_depth < nodes[best].queue_depth) {
      best = i;
    }
  }
  return best;
}

class LeastLoadedPolicy final : public RoutingPolicy {
 public:
  std::size_t route(const std::vector<NodeSnapshot>& nodes) override {
    return least_loaded_of(nodes);
  }
};

/// Residency first, load as the escape hatch: prefer the shallowest node
/// whose cache already holds the request's LUT image; fall back to
/// least-loaded when no node does (the cold miss is then inevitable, so it
/// should land where the queue is shortest) or when every resident node is
/// more than `max_imbalance` requests deeper than the fleet minimum.
class AffinityPolicy final : public RoutingPolicy {
 public:
  explicit AffinityPolicy(std::size_t max_imbalance)
      : max_imbalance_(max_imbalance) {}

  std::size_t route(const std::vector<NodeSnapshot>& nodes) override {
    const std::size_t fallback = least_loaded_of(nodes);
    std::size_t best = nodes.size();
    for (std::size_t i = 0; i < nodes.size(); ++i) {
      if (nodes[i].lut_resident &&
          (best == nodes.size() ||
           nodes[i].queue_depth < nodes[best].queue_depth)) {
        best = i;
      }
    }
    if (best == nodes.size() ||
        nodes[best].queue_depth >
            nodes[fallback].queue_depth + max_imbalance_) {
      return fallback;
    }
    return best;
  }

 private:
  const std::size_t max_imbalance_;
};

}  // namespace

const char* to_string(RoutePolicyKind kind) {
  switch (kind) {
    case RoutePolicyKind::kRoundRobin:
      return "rr";
    case RoutePolicyKind::kLeastLoaded:
      return "least-loaded";
    case RoutePolicyKind::kAffinity:
      return "affinity";
  }
  return "?";
}

std::optional<RoutePolicyKind> parse_route_policy(std::string_view name) {
  if (name == "rr" || name == "round-robin") {
    return RoutePolicyKind::kRoundRobin;
  }
  if (name == "least-loaded") {
    return RoutePolicyKind::kLeastLoaded;
  }
  if (name == "affinity") {
    return RoutePolicyKind::kAffinity;
  }
  return std::nullopt;
}

std::unique_ptr<RoutingPolicy> make_route_policy(
    RoutePolicyKind kind, std::size_t affinity_max_imbalance) {
  switch (kind) {
    case RoutePolicyKind::kRoundRobin:
      return std::make_unique<RoundRobinPolicy>();
    case RoutePolicyKind::kLeastLoaded:
      return std::make_unique<LeastLoadedPolicy>();
    case RoutePolicyKind::kAffinity:
      return std::make_unique<AffinityPolicy>(affinity_max_imbalance);
  }
  throw InvalidArgument("make_route_policy: unknown policy kind");
}

Cluster::Cluster(const core::StarConfig& cfg, const nn::BertConfig& bert,
                 ClusterOptions opts, std::unique_ptr<RoutingPolicy> policy)
    : opts_(std::move(opts)) {
  require(opts_.num_nodes >= 1, "Cluster: num_nodes must be >= 1");
  require(opts_.num_nodes <= 1024, "Cluster: num_nodes must be <= 1024");
  policy_ = policy ? std::move(policy)
                   : make_route_policy(opts_.policy, opts_.affinity_max_imbalance);
  nodes_.reserve(opts_.num_nodes);
  routed_.assign(opts_.num_nodes, 0);
  for (std::size_t i = 0; i < opts_.num_nodes; ++i) {
    Node node;
    // Every node holds the SAME model (same config, same weight stream):
    // that identity is what makes routing payload-invariant by
    // construction. Residency state, however, is genuinely per node.
    node.model = std::make_unique<core::BatchEncoderSim>(
        cfg, bert, opts_.weight_seed, opts_.stack_depth);
    node.sched = std::make_unique<sim::BatchScheduler>(opts_.threads_per_node);
    ServerOptions server_opts = opts_.server;
    server_opts.node_id = static_cast<std::uint32_t>(i);
    node.server = std::make_unique<StarServer>(*node.model, *node.sched,
                                               server_opts);
    nodes_.push_back(std::move(node));
  }
}

Cluster::~Cluster() { shutdown(); }

const StarServer& Cluster::node(std::size_t i) const {
  require(i < nodes_.size(), "Cluster: node index out of range");
  return *nodes_[i].server;
}

const core::BatchEncoderSim& Cluster::node_model(std::size_t i) const {
  require(i < nodes_.size(), "Cluster: node index out of range");
  return *nodes_[i].model;
}

Cluster::RouteDecision Cluster::route_and_bill(workload::Dataset dataset,
                                               std::uint64_t payload_bytes,
                                               std::uint64_t response_bytes) {
  std::vector<NodeSnapshot> snapshots;
  snapshots.reserve(nodes_.size());
  std::lock_guard<std::mutex> lk(route_mu_);
  for (std::size_t i = 0; i < nodes_.size(); ++i) {
    NodeSnapshot s;
    s.node = i;
    s.queue_depth = nodes_[i].server->pending();
    if (dataset == workload::Dataset::kDefault) {
      // The configured format's image is installed at construction on
      // every node; skip the residency lookup.
      s.lut_resident = true;
    } else {
      const fxp::QFormat& fmt = workload::format_for(
          dataset, nodes_[i].model->softmax_engine().format());
      s.lut_resident =
          nodes_[i].model->residency().resident(xbar::lut_image_key(fmt));
    }
    snapshots.push_back(s);
  }
  RouteDecision d;
  d.node = policy_->route(snapshots);
  require(d.node < nodes_.size(), "RoutingPolicy: returned node out of range");
  ++routed_[d.node];
  d.transport_us = (opts_.link.latency(payload_bytes) +
                    opts_.link.latency(response_bytes))
                       .as_us();
  transport_energy_uj_ += (opts_.link.energy(payload_bytes) +
                           opts_.link.energy(response_bytes))
                              .as_uJ();
  return d;
}

std::future<EncoderResponse> Cluster::submit(EncoderRequest req) {
  // Round trip: the seq_len x d_model input down, the same-shape output
  // back.
  const std::uint64_t bytes = tensor_bytes(req.input);
  const RouteDecision d = route_and_bill(req.dataset, bytes, bytes);
  req.transport_us = d.transport_us;
  return nodes_[d.node].server->submit(std::move(req));
}

std::future<AttentionResponse> Cluster::submit(AttentionRequest req) {
  // Q, K and V down; the context output (same shape as Q) back.
  const std::uint64_t down = tensor_bytes(req.qkv.q) +
                             tensor_bytes(req.qkv.k) +
                             tensor_bytes(req.qkv.v);
  const RouteDecision d =
      route_and_bill(workload::Dataset::kDefault, down, tensor_bytes(req.qkv.q));
  req.transport_us = d.transport_us;
  return nodes_[d.node].server->submit(std::move(req));
}

std::future<AnalyticResponse> Cluster::submit(AnalyticRequest req) {
  // A scalar request and a small result record — a control-plane message,
  // not a tensor transfer.
  constexpr std::uint64_t kAnalyticRequestBytes = 16;
  constexpr std::uint64_t kAnalyticResponseBytes = 128;
  const RouteDecision d = route_and_bill(req.dataset, kAnalyticRequestBytes,
                                         kAnalyticResponseBytes);
  req.transport_us = d.transport_us;
  return nodes_[d.node].server->submit(std::move(req));
}

void Cluster::drain() {
  for (Node& node : nodes_) {
    node.server->drain();
  }
}

void Cluster::shutdown() {
  for (Node& node : nodes_) {
    node.server->shutdown();
  }
}

std::vector<std::uint64_t> Cluster::routed_per_node() const {
  std::lock_guard<std::mutex> lk(route_mu_);
  return routed_;
}

ClusterStats Cluster::stats() const {
  ClusterStats cs;
  cs.num_nodes = nodes_.size();
  cs.per_node.reserve(nodes_.size());
  std::vector<double> queue_wait, service;
  double queue_wait_sum_s = 0.0, service_sum_s = 0.0;
  double occupancy_weighted = 0.0;
  std::uint64_t done_total = 0;
  for (const Node& node : nodes_) {
    // One locked copy per node: the snapshot AND the reservoirs must come
    // from the same instant, or the merged p99 could mix epochs.
    const StatsAccumulator acc = node.server->stats_accumulator();
    ServerStats s = acc.snapshot();
    // Overlay the node model's analytic cost-cache ledger (chip-local, one
    // cache per node) and sum it into the fleet totals.
    const core::CostCacheStats cc = node.model->cost_cache().stats();
    core::audit_cost_ledger(cc);
    s.cost_cache_lookups = cc.lookups;
    s.cost_cache_hits = cc.hits;
    s.cost_cache_misses = cc.misses;
    s.cost_cache_bypasses = cc.bypasses;
    s.cost_cache_hit_rate = cc.hit_rate();
    cs.cost_cache_lookups += cc.lookups;
    cs.cost_cache_hits += cc.hits;
    cs.cost_cache_misses += cc.misses;
    cs.cost_cache_bypasses += cc.bypasses;
    const std::uint64_t done = s.completed + s.failed;
    done_total += done;
    cs.submitted += s.submitted;
    cs.admitted += s.admitted;
    cs.rejected += s.rejected;
    cs.shed += s.shed;
    cs.completed += s.completed;
    cs.failed += s.failed;
    cs.batches += s.batches;
    queue_wait_sum_s += s.queue_wait_mean_s * static_cast<double>(done);
    service_sum_s += s.service_mean_s * static_cast<double>(done);
    occupancy_weighted += s.batch_occupancy_mean * static_cast<double>(s.batches);
    cs.effective_tokens += s.effective_tokens;
    cs.padded_tokens += s.padded_tokens;
    cs.capacity_tokens += s.capacity_tokens;
    cs.lut_hits += s.lut_hits;
    cs.lut_misses += s.lut_misses;
    cs.weight_hits += s.weight_hits;
    cs.weight_misses += s.weight_misses;
    cs.programming_us_total += s.programming_us_total;
    cs.transport_us_total += s.transport_us_total;
    const std::vector<double>& qw = acc.queue_wait_samples();
    const std::vector<double>& sv = acc.service_samples();
    // Each node's reservoirs must be index-paired and bounded before they
    // are merged; a desynced pair would corrupt the fleet percentiles.
    audit_reservoir_pair(qw, sv, done);
    queue_wait.insert(queue_wait.end(), qw.begin(), qw.end());
    service.insert(service.end(), sv.begin(), sv.end());
    cs.per_node.push_back(std::move(s));
  }
  // Reservoir-merge size conservation: the fleet union holds exactly the
  // sum of the per-node reservoirs — the merge concatenates, never samples,
  // so the documented weighting (node n contributes min(done_n, kMax)
  // samples) is preserved and nothing is dropped or duplicated.
  if constexpr (contracts_enabled()) {
    std::size_t expected = 0;
    for (const ServerStats& node_stats : cs.per_node) {
      expected += static_cast<std::size_t>(
          std::min<std::uint64_t>(node_stats.completed + node_stats.failed,
                                  StatsAccumulator::kMaxLatencySamples));
    }
    STAR_CONTRACT(queue_wait.size() == expected && service.size() == expected,
                  "cluster merge: fleet reservoir must conserve per-node "
                  "sample counts");
  }
  if (done_total > 0) {
    cs.queue_wait_mean_s = queue_wait_sum_s / static_cast<double>(done_total);
    cs.service_mean_s = service_sum_s / static_cast<double>(done_total);
    cs.transport_us_mean =
        cs.transport_us_total / static_cast<double>(done_total);
  }
  // Fleet tails: index-select over the union of the nodes' reservoirs —
  // the documented merge rule (never an average of per-node p99s).
  cs.queue_wait_p99_s = percentile(queue_wait, 0.99);
  cs.service_p99_s = percentile(service, 0.99);
  if (cs.batches > 0) {
    cs.batch_occupancy_mean =
        occupancy_weighted / static_cast<double>(cs.batches);
  }
  if (cs.capacity_tokens > 0) {
    cs.effective_occupancy = static_cast<double>(cs.effective_tokens) /
                             static_cast<double>(cs.capacity_tokens);
    cs.padded_occupancy = static_cast<double>(cs.padded_tokens) /
                          static_cast<double>(cs.capacity_tokens);
  }
  if (cs.padded_tokens > 0) {
    cs.padding_waste = 1.0 - static_cast<double>(cs.effective_tokens) /
                                 static_cast<double>(cs.padded_tokens);
  }
  if (cs.cost_cache_lookups > 0) {
    cs.cost_cache_hit_rate = static_cast<double>(cs.cost_cache_hits) /
                             static_cast<double>(cs.cost_cache_lookups);
  }
  {
    std::lock_guard<std::mutex> lk(route_mu_);
    cs.routed_per_node = routed_;
    cs.transport_energy_uj_total = transport_energy_uj_;
  }
  std::uint64_t routed_total = 0, routed_max = 0;
  for (const std::uint64_t r : cs.routed_per_node) {
    routed_total += r;
    routed_max = std::max(routed_max, r);
  }
  if (routed_total > 0) {
    const double mean_share = static_cast<double>(routed_total) /
                              static_cast<double>(cs.routed_per_node.size());
    cs.routing_imbalance = static_cast<double>(routed_max) / mean_share;
  }
  return cs;
}

}  // namespace star::serve
