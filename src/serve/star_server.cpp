#include "serve/star_server.hpp"

#include <algorithm>
#include <string>
#include <utility>
#include <vector>

#include "util/contract.hpp"
#include "util/status.hpp"

namespace star::serve {

StarServer::StarServer(const core::BatchEncoderSim& model,
                       sim::BatchScheduler& sched, ServerOptions opts)
    : model_(model), sched_(sched), opts_(opts) {
  require(opts_.max_queue >= 1, "StarServer: max_queue must be >= 1");
  require(opts_.batcher.max_batch >= 1, "StarServer: max_batch must be >= 1");
  require(opts_.batcher.tick.count() >= 0,
          "StarServer: tick duration must be non-negative");
  opts_.batcher.bucketing.validate();
  const std::size_t num_queues = opts_.batcher.bucketing.num_queues();
  queues_.resize(num_queues);
  std::vector<std::int64_t> edges;
  edges.reserve(num_queues);
  for (std::size_t q = 0; q < num_queues; ++q) {
    edges.push_back(opts_.batcher.bucketing.edge_of(q));
  }
  stats_.configure_buckets(std::move(edges));
  batcher_ = std::thread([this] { batcher_loop(); });
}

StarServer::~StarServer() { shutdown(); }

std::size_t StarServer::pending_locked() const {
  std::size_t total = 0;
  for (const auto& q : queues_) {
    total += q.size();
  }
  return total;
}

std::size_t StarServer::oldest_head_locked() const {
  std::size_t best = queues_.size();
  std::uint64_t best_id = 0;
  for (std::size_t q = 0; q < queues_.size(); ++q) {
    if (queues_[q].empty()) {
      continue;
    }
    // Admission ids are strictly increasing, so the smallest head id is
    // the globally oldest pending request.
    if (best == queues_.size() || queues_[q].front().id < best_id) {
      best = q;
      best_id = queues_[q].front().id;
    }
  }
  return best;
}

template <typename Response, typename ComputeFn>
std::future<Response> StarServer::submit_impl(std::int64_t seq_len,
                                              double transport_us,
                                              ComputeFn compute) {
  auto promise = std::make_shared<std::promise<Response>>();
  std::future<Response> fut = promise->get_future();

  Pending p;
  p.seq_len = seq_len;
  p.enqueued = Clock::now();
  p.fail = [promise](std::exception_ptr e) { promise->set_exception(e); };

  Pending victim;  // shed target; its future is failed outside the lock
  bool have_victim = false;
  {
    std::unique_lock<std::mutex> lk(mu_);
    stats_.on_submitted();
    if (!stopping_ && pending_locked() >= opts_.max_queue) {
      switch (opts_.admission) {
        case AdmissionPolicy::kBlock:
          space_cv_.wait(lk, [&] {
            return stopping_ || pending_locked() < opts_.max_queue;
          });
          // Re-stamp: queue_wait measures admission -> dispatch (not the
          // submitter's blocked time) and the batcher's age-out window
          // starts at admission, not at the original submit call.
          p.enqueued = Clock::now();
          break;
        case AdmissionPolicy::kReject:
          stats_.on_rejected();
          lk.unlock();
          promise->set_exception(std::make_exception_ptr(RejectedError(
              "StarServer: admission queue full (max_queue=" +
              std::to_string(opts_.max_queue) + ", policy=reject)")));
          return fut;
        case AdmissionPolicy::kShedOldest: {
          // Shed the GLOBALLY oldest pending request, whatever bucket it
          // waits in — admission control is a server-wide property.
          const std::size_t victim_q = oldest_head_locked();
          victim = std::move(queues_[victim_q].front());
          queues_[victim_q].pop_front();
          stats_.on_shed();
          have_victim = true;
          break;
        }
      }
    }
    if (stopping_) {
      stats_.on_rejected();
      lk.unlock();
      if (have_victim) {
        // Unreachable in practice (shed only happens pre-stop), but never
        // leave a popped request's future unresolved.
        victim.fail(std::make_exception_ptr(
            RejectedError("StarServer: shut down while pending")));
      }
      promise->set_exception(std::make_exception_ptr(
          RejectedError("StarServer: submit after shutdown")));
      return fut;
    }
    p.id = next_request_id_++;
    const std::uint64_t id = p.id;
    const auto enqueued = p.enqueued;
    p.run = [this, promise, compute = std::move(compute), enqueued, id,
             seq_len, transport_us](const BatchContext& ctx) {
      const double queue_wait =
          std::chrono::duration<double>(ctx.dispatched - enqueued).count();
      const auto t0 = Clock::now();
      try {
        // compute() pre-fills the request-shape and residency fields of
        // resp.stats; only the placement/timing facts are stamped here.
        Response resp = compute();
        const double service =
            std::chrono::duration<double>(Clock::now() - t0).count();
        resp.stats.request_id = id;
        resp.stats.batch_id = ctx.batch_id;
        resp.stats.batch_size = ctx.batch_size;
        resp.stats.queue_wait_s = queue_wait;
        resp.stats.service_s = service;
        resp.stats.seq_len = seq_len;
        resp.stats.padded_len = ctx.padded_len;
        resp.stats.bucket = ctx.bucket;
        resp.stats.node = opts_.node_id;
        resp.stats.transport_us = transport_us;
        record_done(resp.stats, /*ok=*/true);
        promise->set_value(std::move(resp));
      } catch (...) {
        const double service =
            std::chrono::duration<double>(Clock::now() - t0).count();
        RequestStats failed;
        failed.request_id = id;
        failed.batch_id = ctx.batch_id;
        failed.batch_size = ctx.batch_size;
        failed.queue_wait_s = queue_wait;
        failed.service_s = service;
        failed.seq_len = seq_len;
        failed.padded_len = ctx.padded_len;
        failed.bucket = ctx.bucket;
        failed.node = opts_.node_id;
        failed.transport_us = transport_us;
        record_done(failed, /*ok=*/false);
        promise->set_exception(std::current_exception());
      }
    };
    stats_.on_admitted();
    queues_[opts_.batcher.bucketing.bucket_of(seq_len)].push_back(std::move(p));
    batcher_cv_.notify_one();
  }
  if (have_victim) {
    victim.fail(std::make_exception_ptr(ShedError(
        "StarServer: request shed by a newer arrival (policy=shed-oldest)")));
  }
  return fut;
}

std::future<EncoderResponse> StarServer::submit(EncoderRequest req) {
  const auto seq_len = static_cast<std::int64_t>(req.input.rows());
  const double transport_us = req.transport_us;
  return submit_impl<EncoderResponse>(seq_len, transport_us,
                                      [this, req = std::move(req)] {
    EncoderResponse resp;
    core::ResidencyCharge charge;
    resp.output = model_.run_encoder_one(req.input,
                                         workload::sequence_seed(req.run_seed, 0),
                                         req.num_layers, req.num_shards,
                                         req.dataset, &charge);
    resp.stats.num_layers = req.num_layers;
    resp.stats.num_shards = req.num_shards;
    resp.stats.programming_us = charge.programming.latency.as_us();
    resp.stats.lut_hits = charge.lut_hits;
    resp.stats.lut_misses = charge.lut_misses;
    resp.stats.weight_hits = charge.weight_hits;
    resp.stats.weight_misses = charge.weight_misses;
    return resp;
  });
}

std::future<AttentionResponse> StarServer::submit(AttentionRequest req) {
  const auto seq_len = static_cast<std::int64_t>(req.qkv.q.rows());
  const double transport_us = req.transport_us;
  return submit_impl<AttentionResponse>(seq_len, transport_us,
                                        [this, req = std::move(req)] {
    AttentionResponse resp;
    resp.result = model_.run_attention_one(
        req.qkv, workload::sequence_seed(req.run_seed, 0));
    return resp;
  });
}

std::future<AnalyticResponse> StarServer::submit(AnalyticRequest req) {
  return submit_impl<AnalyticResponse>(req.seq_len, req.transport_us,
                                       [this, req] {
    AnalyticResponse resp;
    core::ResidencyCharge charge;
    resp.result = model_.run_analytic_one(req.seq_len, req.dataset, &charge);
    resp.stats.programming_us = charge.programming.latency.as_us();
    resp.stats.lut_hits = charge.lut_hits;
    resp.stats.lut_misses = charge.lut_misses;
    return resp;
  });
}

void StarServer::batcher_loop() {
  const LengthBucketing& bucketing = opts_.batcher.bucketing;
  // Reused across dispatches (cleared, capacity kept): forming a batch on
  // the steady-state path allocates nothing once capacity reaches the
  // largest formed batch.
  std::vector<Pending> formed;
  std::unique_lock<std::mutex> lk(mu_);
  for (;;) {
    batcher_cv_.wait(lk, [&] { return stopping_ || pending_locked() > 0; });
    if (pending_locked() == 0) {
      if (stopping_) {
        return;
      }
      continue;
    }
    // Coalesce per queue: a queue is dispatchable once it holds its
    // effective max_batch, once its head ages out past its effective
    // max_wait window, or on shutdown. Under kBlock a full ADMISSION
    // queue (total across buckets) also dispatches — submitters are
    // stalled and no size trigger may ever fire when max_batch >
    // max_queue. Under kReject/kShedOldest a full queue is the admission
    // policy's domain, so the per-queue (max_batch, max_wait) policy is
    // honoured strictly. Deadlines are re-derived from the CURRENT heads
    // each pass: kShedOldest may evict a head mid-wait, and the
    // replacement is owed its own full age-out window.
    const auto queue_ready = [&](std::size_t q) {
      return !queues_[q].empty() &&
             (stopping_ ||
              queues_[q].size() >=
                  bucketing.max_batch_for(q, opts_.batcher.max_batch) ||
              (opts_.admission == AdmissionPolicy::kBlock &&
               pending_locked() >= opts_.max_queue));
    };
    const auto queue_deadline = [&](std::size_t q) {
      return queues_[q].front().enqueued +
             opts_.batcher.tick *
                 bucketing.max_wait_for(q, opts_.batcher.max_wait_ticks);
    };
    const auto any_ready = [&] {
      if (stopping_) {
        return true;
      }
      for (std::size_t q = 0; q < queues_.size(); ++q) {
        if (queue_ready(q)) {
          return true;
        }
      }
      return false;
    };

    // Pick the dispatch queue: any ready queue, else any aged-out head,
    // else sleep until the earliest head deadline. Among several
    // dispatchable queues the one whose head waited longest wins (FIFO
    // fairness across buckets).
    std::size_t dispatch_q = queues_.size();
    while (pending_locked() > 0 && dispatch_q == queues_.size()) {
      const auto now = Clock::now();
      std::size_t best = queues_.size();
      std::uint64_t best_id = 0;
      Clock::time_point earliest_deadline{};
      bool have_deadline = false;
      for (std::size_t q = 0; q < queues_.size(); ++q) {
        if (queues_[q].empty()) {
          continue;
        }
        const auto deadline = queue_deadline(q);
        if (queue_ready(q) || now >= deadline) {
          if (best == queues_.size() || queues_[q].front().id < best_id) {
            best = q;
            best_id = queues_[q].front().id;
          }
        } else if (!have_deadline || deadline < earliest_deadline) {
          earliest_deadline = deadline;
          have_deadline = true;
        }
      }
      if (best != queues_.size()) {
        dispatch_q = best;
        break;
      }
      if (!have_deadline) {
        break;  // queues drained while scanning (shed) — outer loop re-waits
      }
      batcher_cv_.wait_until(lk, earliest_deadline, any_ready);
      // Loop re-scans: either a queue became ready, a head aged out, or a
      // newer-deadline head replaced a shed one.
    }
    if (dispatch_q == queues_.size()) {
      continue;
    }

    std::deque<Pending>& queue = queues_[dispatch_q];
    formed.clear();
    const std::size_t take = std::min(
        queue.size(), bucketing.max_batch_for(dispatch_q, opts_.batcher.max_batch));
    formed.reserve(take);
    std::int64_t batch_max_len = 0;
    std::int64_t effective = 0;
    for (std::size_t i = 0; i < take; ++i) {
      batch_max_len = std::max(batch_max_len, queue.front().seq_len);
      effective += queue.front().seq_len;
      formed.push_back(std::move(queue.front()));
      queue.pop_front();
    }
    const std::int64_t padded_len =
        bucketing.padded_len(dispatch_q, batch_max_len);
    // The billed slot width covers every member (LengthBucketing routes a
    // request only to a bucket whose edge fits it), so the token ledger's
    // effective <= padded holds per batch by construction.
    STAR_CONTRACT(padded_len >= batch_max_len,
                  "batcher: billed slot width below the batch's longest member");
    const BatchContext ctx{next_batch_id_++, formed.size(), Clock::now(),
                           padded_len, dispatch_q};
    // Token accounting: `formed.size() * padded_len` billed slots holding
    // `effective` real tokens, out of a bucket capacity of max_batch rows
    // at the same padded width. Padded slots never execute — they exist
    // only in this accounting.
    stats_.on_batch(
        formed.size(), dispatch_q, static_cast<std::uint64_t>(effective),
        static_cast<std::uint64_t>(formed.size()) *
            static_cast<std::uint64_t>(padded_len),
        static_cast<std::uint64_t>(
            bucketing.max_batch_for(dispatch_q, opts_.batcher.max_batch)) *
            static_cast<std::uint64_t>(padded_len));
    batch_in_flight_ = true;
    space_cv_.notify_all();
    lk.unlock();
    // Jobs catch their own exceptions (into their futures), so the
    // scheduler never rethrows into the serving loop.
    sched_.run(formed.size(), [&](std::size_t i) { formed[i].run(ctx); });
    lk.lock();
    batch_in_flight_ = false;
    if (pending_locked() == 0) {
      idle_cv_.notify_all();
    }
  }
}

void StarServer::record_done(const RequestStats& rs, bool ok) {
  std::lock_guard<std::mutex> lk(mu_);
  stats_.on_done(rs, ok);
}

void StarServer::drain() {
  std::unique_lock<std::mutex> lk(mu_);
  idle_cv_.wait(lk, [&] { return pending_locked() == 0 && !batch_in_flight_; });
}

void StarServer::shutdown() {
  {
    std::lock_guard<std::mutex> lk(mu_);
    stopping_ = true;
  }
  batcher_cv_.notify_all();
  space_cv_.notify_all();
  {
    // Serialise concurrent shutdown() calls around the join.
    std::lock_guard<std::mutex> jl(join_mu_);
    if (batcher_.joinable()) {
      batcher_.join();
    }
  }
}

StatsAccumulator StarServer::stats_accumulator() const {
  std::lock_guard<std::mutex> lk(mu_);
  return stats_;
}

ServerStats StarServer::stats() const {
  // Copy the accumulator under the lock; the percentile selects over the
  // latency reservoirs run after release so a polling monitor never stalls
  // submit()/record_done()/the batcher for two O(n) nth_elements.
  StatsAccumulator copy;
  {
    std::lock_guard<std::mutex> lk(mu_);
    copy = stats_;
  }
  ServerStats s = copy.snapshot();
  // Overlay the model's analytic cost-cache ledger (internally
  // synchronized; model-lifetime counters — see the ServerStats field
  // docs). Audited here so every stats() poll re-proves conservation.
  const core::CostCacheStats cc = model_.cost_cache().stats();
  core::audit_cost_ledger(cc);
  s.cost_cache_lookups = cc.lookups;
  s.cost_cache_hits = cc.hits;
  s.cost_cache_misses = cc.misses;
  s.cost_cache_bypasses = cc.bypasses;
  s.cost_cache_hit_rate = cc.hit_rate();
  return s;
}

std::size_t StarServer::pending() const {
  std::lock_guard<std::mutex> lk(mu_);
  return pending_locked();
}

}  // namespace star::serve
