#include "serve/star_server.hpp"

#include <algorithm>
#include <string>
#include <utility>
#include <vector>

#include "util/status.hpp"

namespace star::serve {

StarServer::StarServer(const core::BatchEncoderSim& model,
                       sim::BatchScheduler& sched, ServerOptions opts)
    : model_(model), sched_(sched), opts_(opts) {
  require(opts_.max_queue >= 1, "StarServer: max_queue must be >= 1");
  require(opts_.batcher.max_batch >= 1, "StarServer: max_batch must be >= 1");
  require(opts_.batcher.tick.count() >= 0,
          "StarServer: tick duration must be non-negative");
  batcher_ = std::thread([this] { batcher_loop(); });
}

StarServer::~StarServer() { shutdown(); }

template <typename Response, typename ComputeFn>
std::future<Response> StarServer::submit_impl(ComputeFn compute) {
  auto promise = std::make_shared<std::promise<Response>>();
  std::future<Response> fut = promise->get_future();

  Pending p;
  p.enqueued = Clock::now();
  p.fail = [promise](std::exception_ptr e) { promise->set_exception(e); };

  Pending victim;  // shed target; its future is failed outside the lock
  bool have_victim = false;
  {
    std::unique_lock<std::mutex> lk(mu_);
    stats_.on_submitted();
    if (!stopping_ && queue_.size() >= opts_.max_queue) {
      switch (opts_.admission) {
        case AdmissionPolicy::kBlock:
          space_cv_.wait(lk, [&] {
            return stopping_ || queue_.size() < opts_.max_queue;
          });
          // Re-stamp: queue_wait measures admission -> dispatch (not the
          // submitter's blocked time) and the batcher's age-out window
          // starts at admission, not at the original submit call.
          p.enqueued = Clock::now();
          break;
        case AdmissionPolicy::kReject:
          stats_.on_rejected();
          lk.unlock();
          promise->set_exception(std::make_exception_ptr(RejectedError(
              "StarServer: admission queue full (max_queue=" +
              std::to_string(opts_.max_queue) + ", policy=reject)")));
          return fut;
        case AdmissionPolicy::kShedOldest:
          victim = std::move(queue_.front());
          queue_.pop_front();
          stats_.on_shed();
          have_victim = true;
          break;
      }
    }
    if (stopping_) {
      stats_.on_rejected();
      lk.unlock();
      if (have_victim) {
        // Unreachable in practice (shed only happens pre-stop), but never
        // leave a popped request's future unresolved.
        victim.fail(std::make_exception_ptr(
            RejectedError("StarServer: shut down while pending")));
      }
      promise->set_exception(std::make_exception_ptr(
          RejectedError("StarServer: submit after shutdown")));
      return fut;
    }
    p.id = next_request_id_++;
    const std::uint64_t id = p.id;
    const auto enqueued = p.enqueued;
    p.run = [this, promise, compute = std::move(compute), enqueued,
             id](const BatchContext& ctx) {
      const double queue_wait =
          std::chrono::duration<double>(ctx.dispatched - enqueued).count();
      const auto t0 = Clock::now();
      try {
        // compute() pre-fills the request-shape and residency fields of
        // resp.stats; only the placement/timing facts are stamped here.
        Response resp = compute();
        const double service =
            std::chrono::duration<double>(Clock::now() - t0).count();
        resp.stats.request_id = id;
        resp.stats.batch_id = ctx.batch_id;
        resp.stats.batch_size = ctx.batch_size;
        resp.stats.queue_wait_s = queue_wait;
        resp.stats.service_s = service;
        record_done(resp.stats, /*ok=*/true);
        promise->set_value(std::move(resp));
      } catch (...) {
        const double service =
            std::chrono::duration<double>(Clock::now() - t0).count();
        RequestStats failed;
        failed.request_id = id;
        failed.batch_id = ctx.batch_id;
        failed.batch_size = ctx.batch_size;
        failed.queue_wait_s = queue_wait;
        failed.service_s = service;
        record_done(failed, /*ok=*/false);
        promise->set_exception(std::current_exception());
      }
    };
    stats_.on_admitted();
    queue_.push_back(std::move(p));
    batcher_cv_.notify_one();
  }
  if (have_victim) {
    victim.fail(std::make_exception_ptr(ShedError(
        "StarServer: request shed by a newer arrival (policy=shed-oldest)")));
  }
  return fut;
}

std::future<EncoderResponse> StarServer::submit(EncoderRequest req) {
  return submit_impl<EncoderResponse>([this, req = std::move(req)] {
    EncoderResponse resp;
    core::ResidencyCharge charge;
    resp.output = model_.run_encoder_one(req.input,
                                         workload::sequence_seed(req.run_seed, 0),
                                         req.num_layers, req.num_shards,
                                         req.dataset, &charge);
    resp.stats.num_layers = req.num_layers;
    resp.stats.num_shards = req.num_shards;
    resp.stats.programming_us = charge.programming.latency.as_us();
    resp.stats.lut_hits = charge.lut_hits;
    resp.stats.lut_misses = charge.lut_misses;
    resp.stats.weight_hits = charge.weight_hits;
    resp.stats.weight_misses = charge.weight_misses;
    return resp;
  });
}

std::future<AttentionResponse> StarServer::submit(AttentionRequest req) {
  return submit_impl<AttentionResponse>([this, req = std::move(req)] {
    AttentionResponse resp;
    resp.result = model_.run_attention_one(
        req.qkv, workload::sequence_seed(req.run_seed, 0));
    return resp;
  });
}

std::future<AnalyticResponse> StarServer::submit(AnalyticRequest req) {
  return submit_impl<AnalyticResponse>([this, req] {
    AnalyticResponse resp;
    resp.result = model_.run_analytic_one(req.seq_len);
    return resp;
  });
}

void StarServer::batcher_loop() {
  std::unique_lock<std::mutex> lk(mu_);
  for (;;) {
    batcher_cv_.wait(lk, [&] { return stopping_ || !queue_.empty(); });
    if (queue_.empty()) {
      if (stopping_) {
        return;
      }
      continue;
    }
    // Coalesce: hold for a full batch until the head ages out (or
    // shutdown). Under kBlock a full admission queue also dispatches —
    // submitters are stalled and the size trigger could never fire when
    // max_batch > max_queue. Under kReject/kShedOldest a full queue is the
    // admission policy's domain, so the (max_batch, max_wait) policy is
    // honoured strictly. The deadline is re-derived from the CURRENT head
    // each pass: kShedOldest may evict the head mid-wait, and the
    // replacement is owed its own full age-out window.
    const auto batch_ready = [&] {
      return stopping_ || queue_.size() >= opts_.batcher.max_batch ||
             (opts_.admission == AdmissionPolicy::kBlock &&
              queue_.size() >= opts_.max_queue);
    };
    const auto max_wait = opts_.batcher.tick * opts_.batcher.max_wait_ticks;
    while (!queue_.empty() && !batch_ready()) {
      const auto deadline = queue_.front().enqueued + max_wait;
      if (batcher_cv_.wait_until(lk, deadline, batch_ready)) {
        break;
      }
      if (!queue_.empty() && Clock::now() >= queue_.front().enqueued + max_wait) {
        break;  // the current head really has aged out
      }
    }
    if (queue_.empty()) {
      continue;
    }

    std::vector<Pending> formed;
    const std::size_t take = std::min(queue_.size(), opts_.batcher.max_batch);
    formed.reserve(take);
    for (std::size_t i = 0; i < take; ++i) {
      formed.push_back(std::move(queue_.front()));
      queue_.pop_front();
    }
    const BatchContext ctx{next_batch_id_++, formed.size(), Clock::now()};
    stats_.on_batch(formed.size());
    batch_in_flight_ = true;
    space_cv_.notify_all();
    lk.unlock();
    // Jobs catch their own exceptions (into their futures), so the
    // scheduler never rethrows into the serving loop.
    sched_.run(formed.size(), [&](std::size_t i) { formed[i].run(ctx); });
    lk.lock();
    batch_in_flight_ = false;
    if (queue_.empty()) {
      idle_cv_.notify_all();
    }
  }
}

void StarServer::record_done(const RequestStats& rs, bool ok) {
  std::lock_guard<std::mutex> lk(mu_);
  stats_.on_done(rs, ok);
}

void StarServer::drain() {
  std::unique_lock<std::mutex> lk(mu_);
  idle_cv_.wait(lk, [&] { return queue_.empty() && !batch_in_flight_; });
}

void StarServer::shutdown() {
  {
    std::lock_guard<std::mutex> lk(mu_);
    stopping_ = true;
  }
  batcher_cv_.notify_all();
  space_cv_.notify_all();
  {
    // Serialise concurrent shutdown() calls around the join.
    std::lock_guard<std::mutex> jl(join_mu_);
    if (batcher_.joinable()) {
      batcher_.join();
    }
  }
}

ServerStats StarServer::stats() const {
  // Copy the accumulator under the lock; the percentile selects over the
  // latency reservoirs run after release so a polling monitor never stalls
  // submit()/record_done()/the batcher for two O(n) nth_elements.
  StatsAccumulator copy;
  {
    std::lock_guard<std::mutex> lk(mu_);
    copy = stats_;
  }
  return copy.snapshot();
}

std::size_t StarServer::pending() const {
  std::lock_guard<std::mutex> lk(mu_);
  return queue_.size();
}

}  // namespace star::serve
