// Asynchronous serving front end over the batched STAR simulator.
//
// Callers submit INDIVIDUAL requests and get std::futures back; they never
// see a batch boundary. Inside, a StarServer is three cooperating pieces:
//
//   1. Admission: a bounded pending queue (`max_queue`) with a
//      backpressure policy — block the submitter, reject the newcomer, or
//      shed the oldest pending request to make room.
//   2. Dynamic batcher: a dedicated thread that coalesces pending requests
//      into a batch once `max_batch` are waiting, or earlier once the
//      oldest pending request has aged `max_wait_ticks` ticks — the
//      classic (max batch, max wait) serving policy. With length-bucketed
//      batching enabled (BatcherPolicy::bucketing) requests are first
//      partitioned by sequence length into per-bucket queues, each with
//      its own effective (max_batch, max_wait) knobs; a formed batch never
//      mixes buckets and is billed at the bucket's padded length instead
//      of the batch max (see serve/length_buckets.hpp).
//   3. Dispatch: each formed batch runs on the caller-supplied
//      sim::BatchScheduler worker pool; request i of the batch executes
//      core::BatchEncoderSim::run_*_one with its own derived seed.
//
// Determinism contract: a response payload depends ONLY on (request
// payload, request run_seed) — never on which batch the request landed in,
// the batcher policy, or the thread count. Each request executes with
// engine seed workload::sequence_seed(run_seed, 0), exactly the seed of a
// solo run_*_batch({input}, sched, run_seed) call, so server responses are
// bit-identical to solo closed-batch runs. Timing (RequestStats,
// ServerStats) is wall-clock and placement-dependent by design.
//
// Threading: submit()/drain()/stats() are safe from any thread. The
// scheduler passed in must not be used by anyone else while the server is
// live (BatchScheduler::run is single-caller; the batcher thread is that
// caller). Compute exceptions propagate through the request's own future
// and never affect batchmates or the server loop.
#pragma once

#include <chrono>
#include <condition_variable>
#include <cstddef>
#include <cstdint>
#include <deque>
#include <functional>
#include <future>
#include <mutex>
#include <thread>

#include "core/batch_encoder.hpp"
#include "serve/length_buckets.hpp"
#include "serve/request.hpp"
#include "serve/server_stats.hpp"
#include "sim/batch_scheduler.hpp"

namespace star::serve {

/// What to do with a submit() when the pending queue is full.
enum class AdmissionPolicy {
  kBlock,      ///< block the submitter until the batcher frees space
  kReject,     ///< fail the NEW request's future with RejectedError
  kShedOldest  ///< fail the OLDEST pending future with ShedError, admit new
};

/// The (max batch, max wait) coalescing policy of the dynamic batcher.
struct BatcherPolicy {
  /// Dispatch as soon as this many requests are pending (also the cap on
  /// formed-batch size).
  std::size_t max_batch = 8;
  /// Dispatch a partial batch once the oldest pending request has waited
  /// this many ticks. 0 dispatches whatever is pending immediately
  /// (latency-optimal, occupancy-pessimal).
  std::uint32_t max_wait_ticks = 4;
  /// Duration of one tick.
  std::chrono::microseconds tick{100};
  /// The length dimension: pad-to-max (default, one queue) or
  /// length-bucketed (one queue per bucket + overflow, each with its own
  /// effective (max_batch, max_wait_ticks); batches never mix buckets).
  /// Bucketing is scheduling/accounting-only — payloads are bit-identical
  /// across every mode and bucket-edge choice.
  LengthBucketing bucketing{};
};

struct ServerOptions {
  std::size_t max_queue = 64;  ///< pending-queue bound (admission control)
  AdmissionPolicy admission = AdmissionPolicy::kBlock;
  BatcherPolicy batcher{};
  /// Which cluster node this server is (stamped into every
  /// RequestStats.node). 0 for a standalone server; serve::Cluster numbers
  /// its nodes 0..N-1.
  std::uint32_t node_id = 0;
};

class StarServer {
 public:
  /// The model and scheduler must outlive the server; the scheduler must
  /// not be driven concurrently by other callers while the server is live.
  StarServer(const core::BatchEncoderSim& model, sim::BatchScheduler& sched,
             ServerOptions opts = {});
  ~StarServer();  ///< shutdown(): every admitted future resolves first

  StarServer(const StarServer&) = delete;
  StarServer& operator=(const StarServer&) = delete;

  /// Admit one request; the future resolves to the response (or to the
  /// compute/admission exception). Never throws on the submit path itself —
  /// admission failures travel through the future too, so open-loop
  /// drivers need no try/catch.
  [[nodiscard]] std::future<EncoderResponse> submit(EncoderRequest req);
  [[nodiscard]] std::future<AttentionResponse> submit(AttentionRequest req);
  [[nodiscard]] std::future<AnalyticResponse> submit(AnalyticRequest req);

  /// Block until every admitted request has resolved (queue empty and no
  /// batch in flight). New submissions during a drain() may extend it.
  void drain();

  /// Stop admitting, dispatch everything still pending, join the batcher.
  /// Idempotent; called by the destructor. Post-shutdown submits are
  /// rejected (RejectedError) regardless of policy.
  void shutdown();

  [[nodiscard]] ServerStats stats() const;
  /// Locked copy of the raw accumulator — the cluster's fleet-merge path,
  /// which needs the latency reservoirs themselves (see the fleet-merge
  /// notes on StatsAccumulator), not just the snapshot.
  [[nodiscard]] StatsAccumulator stats_accumulator() const;
  [[nodiscard]] std::size_t pending() const;  ///< queued, not yet dispatched
  [[nodiscard]] const ServerOptions& options() const { return opts_; }
  [[nodiscard]] const core::BatchEncoderSim& model() const { return model_; }

 private:
  using Clock = std::chrono::steady_clock;

  /// Dispatch-time facts shared by every request of one formed batch.
  struct BatchContext {
    std::uint64_t batch_id = 0;
    std::size_t batch_size = 0;
    Clock::time_point dispatched{};
    std::int64_t padded_len = 0;  ///< billed slot width of this batch
    std::size_t bucket = 0;       ///< queue the batch was formed from
  };

  /// A queued request, type-erased: `run` computes and fulfils the future,
  /// `fail` fulfils it with an exception without running (shed/shutdown).
  struct Pending {
    std::uint64_t id = 0;
    std::int64_t seq_len = 0;
    Clock::time_point enqueued{};
    std::function<void(const BatchContext&)> run;
    std::function<void(std::exception_ptr)> fail;
  };

  template <typename Response, typename ComputeFn>
  std::future<Response> submit_impl(std::int64_t seq_len, double transport_us,
                                    ComputeFn compute);
  void batcher_loop();
  void record_done(const RequestStats& rs, bool ok);
  [[nodiscard]] std::size_t pending_locked() const;
  /// The queue whose head has been waiting longest (by admission id);
  /// queues_.size() when everything is empty.
  [[nodiscard]] std::size_t oldest_head_locked() const;

  const core::BatchEncoderSim& model_;
  sim::BatchScheduler& sched_;
  const ServerOptions opts_;

  mutable std::mutex mu_;
  std::condition_variable batcher_cv_;  ///< work arrived / shutdown
  std::condition_variable space_cv_;    ///< queue space freed (kBlock)
  std::condition_variable idle_cv_;     ///< fully drained (drain())
  /// One FIFO per batcher queue (pad-to-max: exactly one; bucketed: one
  /// per bucket + the overflow queue). The admission bound `max_queue`
  /// applies to the TOTAL across queues.
  std::vector<std::deque<Pending>> queues_;
  bool stopping_ = false;
  bool batch_in_flight_ = false;
  std::uint64_t next_request_id_ = 0;
  std::uint64_t next_batch_id_ = 0;
  StatsAccumulator stats_;

  std::mutex join_mu_;   ///< serialises shutdown()'s join
  std::thread batcher_;  ///< last member: starts after all state exists
};

}  // namespace star::serve
