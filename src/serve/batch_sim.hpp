// Deterministic virtual-time replay of the dynamic batcher policy.
//
// StarServer's batcher runs on wall-clock time, so its formed batches (and
// therefore its occupancy/waste accounting) vary run to run with scheduler
// jitter. This simulator replays the SAME (max_batch, max_wait,
// LengthBucketing) policy against an ArrivalTrace in virtual time with an
// analytic service model, making batch formation a pure function of
// (trace, lengths, config). That is what the 10^6-arrival soak sections of
// bench_batched_encoder and tests/test_length_bucketing.cpp run: big enough
// to exercise the steady state, deterministic enough for CI to pin
// "bucketed waste < pad-to-max waste" as an exact, reproducible relation.
//
// Model: one engine, one batcher. A queue becomes dispatchable when it
// holds its effective max_batch or when its head has aged max_wait ticks;
// a dispatch occupies the engine for
//     service = batch_overhead_ticks + ticks_per_token * B * P
// ticks (B = formed size, P = padded length — padding is billed, which is
// exactly the cost model that makes padding waste mean something). Arrivals
// admit before any dispatch at the same instant, and among simultaneously
// dispatchable queues the oldest head wins — both rules mirror the live
// batcher and make ties deterministic.
//
// The result reuses ServerStats with TICKS in the seconds-named latency
// fields (queue_wait_mean_s etc.); the token-occupancy block is denominated
// in tokens as usual, so waste/occupancy compare directly with live runs.
#pragma once

#include <cstddef>
#include <cstdint>
#include <vector>

#include "serve/length_buckets.hpp"
#include "serve/server_stats.hpp"
#include "workload/arrival_trace.hpp"

namespace star::core {
class BatchEncoderSim;
}  // namespace star::core

namespace star::serve {

/// The batcher policy + analytic service model of one simulated server.
struct BatchSimConfig {
  std::size_t max_batch = 8;        ///< policy-wide dispatch-size cap
  std::uint32_t max_wait_ticks = 4; ///< policy-wide head age-out window
  LengthBucketing bucketing{};      ///< pad-to-max or length-bucketed
  /// Fixed per-dispatch cost (ticks) — models kernel launch / programming.
  double batch_overhead_ticks = 1.0;
  /// Marginal cost (ticks) of one BILLED token-slot: a batch of B requests
  /// padded to P tokens serves in overhead + ticks_per_token * B * P.
  double ticks_per_token = 0.01;

  /// Optional STAR-calibrated service model. When non-null, a dispatch's
  /// marginal cost is the accelerator's own analytic latency at the billed
  /// padded length instead of the linear per-token proxy:
  ///     service = overhead + take * analytic_ticks_per_us
  ///                               * run_analytic_one(padded_len).latency_us
  /// The model is shared, not copied; it must outlive the simulation.
  /// Because the replay hits the same few padded lengths millions of times,
  /// this leg runs almost entirely out of the model's memoized CostCache —
  /// the soak that pins cache_hit_rate > 0.99 in BENCH_9. Still
  /// deterministic: run_analytic_one is a pure analytic figure and the
  /// steady-state record is residency-independent.
  const core::BatchEncoderSim* analytic_model = nullptr;
  /// Virtual-ticks per microsecond of modelled accelerator latency (scales
  /// the analytic service into the trace's tick domain).
  double analytic_ticks_per_us = 1.0;

  void validate() const;
};

/// Outcome of one simulated trace. `stats` follows the live ServerStats
/// semantics except that every *_s latency field is in TICKS.
struct BatchSimResult {
  ServerStats stats;
  double makespan_ticks = 0.0;     ///< last batch completion time
  double busy_ticks = 0.0;         ///< engine-occupied ticks (sum of services)
  double utilization = 0.0;        ///< busy / makespan
  std::uint64_t served = 0;        ///< requests dispatched (== trace size)
};

/// Replay `trace` (request i arrives at trace.arrival_ticks[i] with length
/// seq_lens[i]) through the batcher policy in `cfg`. `seq_lens` must match
/// the trace size with every length >= 1. Deterministic in all arguments.
[[nodiscard]] BatchSimResult simulate_batching(
    const workload::ArrivalTrace& trace,
    const std::vector<std::int64_t>& seq_lens, const BatchSimConfig& cfg);

}  // namespace star::serve
