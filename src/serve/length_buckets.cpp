#include "serve/length_buckets.hpp"

#include "util/status.hpp"

namespace star::serve {

const char* to_string(BatchingMode mode) {
  switch (mode) {
    case BatchingMode::kPadToMax: return "pad-to-max";
    case BatchingMode::kLengthBucketed: return "length-bucketed";
  }
  return "?";
}

void LengthBucketing::validate() const {
  std::int64_t prev = 1;
  for (const LengthBucket& b : buckets) {
    require(b.edge >= 2, "LengthBucketing: bucket edges must be >= 2");
    require(b.edge > prev,
            "LengthBucketing: bucket edges must be strictly increasing");
    require(b.max_wait_ticks >= -1,
            "LengthBucketing: max_wait_ticks must be >= -1 (-1 = inherit)");
    prev = b.edge;
  }
}

std::size_t LengthBucketing::num_queues() const {
  return mode == BatchingMode::kLengthBucketed ? buckets.size() + 1 : 1;
}

std::size_t LengthBucketing::bucket_of(std::int64_t seq_len) const {
  if (mode == BatchingMode::kPadToMax) {
    return 0;
  }
  for (std::size_t i = 0; i < buckets.size(); ++i) {
    if (seq_len <= buckets[i].edge) {
      return i;
    }
  }
  return buckets.size();  // overflow: longer than every edge
}

bool LengthBucketing::pads_to_batch_max(std::size_t queue) const {
  return mode == BatchingMode::kPadToMax || queue >= buckets.size();
}

std::int64_t LengthBucketing::padded_len(std::size_t queue,
                                         std::int64_t batch_max_len) const {
  return pads_to_batch_max(queue) ? batch_max_len : buckets[queue].edge;
}

std::int64_t LengthBucketing::edge_of(std::size_t queue) const {
  return pads_to_batch_max(queue) ? 0 : buckets[queue].edge;
}

std::size_t LengthBucketing::max_batch_for(std::size_t queue,
                                           std::size_t global_max_batch) const {
  if (pads_to_batch_max(queue) || buckets[queue].max_batch == 0) {
    return global_max_batch;
  }
  return buckets[queue].max_batch;
}

std::uint32_t LengthBucketing::max_wait_for(std::size_t queue,
                                            std::uint32_t global_wait) const {
  if (pads_to_batch_max(queue) || buckets[queue].max_wait_ticks < 0) {
    return global_wait;
  }
  return static_cast<std::uint32_t>(buckets[queue].max_wait_ticks);
}

LengthBucketing LengthBucketing::pad_to_max() { return LengthBucketing{}; }

LengthBucketing LengthBucketing::bucketed(
    const std::vector<std::int64_t>& edges) {
  LengthBucketing b;
  b.mode = BatchingMode::kLengthBucketed;
  b.buckets.reserve(edges.size());
  for (const std::int64_t e : edges) {
    b.buckets.push_back(LengthBucket{e});
  }
  b.validate();
  return b;
}

}  // namespace star::serve
