#include "serve/batch_sim.hpp"

#include <algorithm>
#include <cmath>
#include <deque>
#include <limits>

#include "core/batch_encoder.hpp"
#include "util/contract.hpp"
#include "util/status.hpp"

namespace star::serve {

void BatchSimConfig::validate() const {
  require(max_batch >= 1, "BatchSimConfig: max_batch must be >= 1");
  require(std::isfinite(batch_overhead_ticks) && batch_overhead_ticks >= 0.0,
          "BatchSimConfig: batch_overhead_ticks must be finite and >= 0");
  require(std::isfinite(ticks_per_token) && ticks_per_token >= 0.0,
          "BatchSimConfig: ticks_per_token must be finite and >= 0");
  require(std::isfinite(analytic_ticks_per_us) && analytic_ticks_per_us > 0.0,
          "BatchSimConfig: analytic_ticks_per_us must be finite and > 0");
  bucketing.validate();
}

namespace {

struct SimPending {
  double arrival = 0.0;
  std::int64_t seq_len = 0;
  std::uint64_t id = 0;
};

}  // namespace

BatchSimResult simulate_batching(const workload::ArrivalTrace& trace,
                                 const std::vector<std::int64_t>& seq_lens,
                                 const BatchSimConfig& cfg) {
  cfg.validate();
  require(seq_lens.size() == trace.size(),
          "simulate_batching: one seq_len per arrival required");
  for (const std::int64_t len : seq_lens) {
    require(len >= 1, "simulate_batching: seq_lens must be >= 1");
  }
  if constexpr (contracts_enabled()) {
    // The replay's event loop (arrivals admit before equal-tick dispatches,
    // head age-out windows) assumes the documented ArrivalTrace invariant.
    // A hand-built trace can violate it; audit before simulating.
    for (std::size_t i = 1; i < trace.size(); ++i) {
      STAR_CONTRACT(trace.arrival_ticks[i] > trace.arrival_ticks[i - 1],
                    "simulate_batching: arrival ticks must be strictly "
                    "increasing");
    }
  }

  const std::size_t num_queues = cfg.bucketing.num_queues();
  std::vector<std::deque<SimPending>> queues(num_queues);

  StatsAccumulator acc;
  {
    std::vector<std::int64_t> edges;
    edges.reserve(num_queues);
    for (std::size_t q = 0; q < num_queues; ++q) {
      edges.push_back(cfg.bucketing.edge_of(q));
    }
    acc.configure_buckets(std::move(edges));
  }

  constexpr double kInf = std::numeric_limits<double>::infinity();
  double engine_free = 0.0;
  double busy = 0.0;
  double makespan = 0.0;
  std::uint64_t served = 0;
  std::size_t next_arrival = 0;
  std::size_t pending = 0;

  // A queue's trigger time: the instant its policy wants a dispatch —
  // head age-out, or the moment the queue FILLED (the arrival of its
  // max_batch-th member, never earlier: the batch must not dispatch before
  // its own members exist). The dispatch itself additionally waits for the
  // engine.
  const auto trigger_of = [&](std::size_t q) {
    if (queues[q].empty()) {
      return kInf;
    }
    const std::size_t cap = cfg.bucketing.max_batch_for(q, cfg.max_batch);
    double t = queues[q].front().arrival +
               static_cast<double>(
                   cfg.bucketing.max_wait_for(q, cfg.max_wait_ticks));
    if (queues[q].size() >= cap) {
      t = std::min(t, queues[q][cap - 1].arrival);
    }
    return t;
  };

  while (next_arrival < trace.size() || pending > 0) {
    // Earliest dispatch across queues; oldest head breaks ties so bucket
    // fairness matches the live batcher.
    std::size_t best_q = num_queues;
    double best_dispatch = kInf;
    std::uint64_t best_id = 0;
    for (std::size_t q = 0; q < num_queues; ++q) {
      if (queues[q].empty()) {
        continue;
      }
      const double dispatch = std::max(trigger_of(q), engine_free);
      if (dispatch < best_dispatch ||
          (dispatch == best_dispatch && queues[q].front().id < best_id)) {
        best_q = q;
        best_dispatch = dispatch;
        best_id = queues[q].front().id;
      }
    }

    // Admit every arrival at or before the decided dispatch instant FIRST:
    // an arrival can fill a queue and advance (never delay) its trigger,
    // and arrivals-before-dispatch at the same tick is the deterministic
    // tie rule. With no dispatchable queue, admit the next arrival.
    if (next_arrival < trace.size() &&
        trace.arrival_ticks[next_arrival] <= best_dispatch) {
      SimPending p;
      p.arrival = trace.arrival_ticks[next_arrival];
      p.seq_len = seq_lens[next_arrival];
      p.id = next_arrival;
      acc.on_submitted();
      acc.on_admitted();
      queues[cfg.bucketing.bucket_of(p.seq_len)].push_back(p);
      ++pending;
      ++next_arrival;
      continue;
    }
    if (best_q == num_queues) {
      break;  // unreachable: pending > 0 implies a non-empty queue
    }

    std::deque<SimPending>& queue = queues[best_q];
    const std::size_t cap = cfg.bucketing.max_batch_for(best_q, cfg.max_batch);
    const std::size_t take = std::min(queue.size(), cap);
    std::int64_t batch_max_len = 0;
    std::int64_t effective = 0;
    std::vector<SimPending> formed;
    formed.reserve(take);
    for (std::size_t i = 0; i < take; ++i) {
      batch_max_len = std::max(batch_max_len, queue.front().seq_len);
      effective += queue.front().seq_len;
      formed.push_back(queue.front());
      queue.pop_front();
    }
    pending -= take;

    const std::int64_t padded_len =
        cfg.bucketing.padded_len(best_q, batch_max_len);
    // STAR-calibrated service when an analytic model is attached (cached —
    // repeated padded lengths are O(1) CostCache hits), linear token proxy
    // otherwise.
    const double marginal =
        cfg.analytic_model != nullptr
            ? cfg.analytic_ticks_per_us *
                  cfg.analytic_model->run_analytic_one(padded_len)
                      .latency.as_us()
            : cfg.ticks_per_token * static_cast<double>(padded_len);
    const double service =
        cfg.batch_overhead_ticks + static_cast<double>(take) * marginal;
    const double finish = best_dispatch + service;

    acc.on_batch(take, best_q, static_cast<std::uint64_t>(effective),
                 static_cast<std::uint64_t>(take) *
                     static_cast<std::uint64_t>(padded_len),
                 static_cast<std::uint64_t>(cap) *
                     static_cast<std::uint64_t>(padded_len));
    for (const SimPending& p : formed) {
      RequestStats rs;
      rs.request_id = p.id;
      rs.batch_size = take;
      rs.queue_wait_s = best_dispatch - p.arrival;  // ticks, not seconds
      rs.service_s = service;
      rs.seq_len = p.seq_len;
      rs.padded_len = padded_len;
      rs.bucket = best_q;
      acc.on_done(rs, /*ok=*/true);
    }
    served += take;
    busy += service;
    engine_free = finish;
    makespan = std::max(makespan, finish);
  }

  BatchSimResult result;
  result.stats = acc.snapshot();
  result.makespan_ticks = makespan;
  result.busy_ticks = busy;
  result.utilization = makespan > 0.0 ? busy / makespan : 0.0;
  result.served = served;
  return result;
}

}  // namespace star::serve
