// Length-bucketed dynamic batching configuration.
//
// Real traffic is a length distribution (workload::LengthHistogram), but a
// formed batch executes as a rectangle: every slot is billed at the same
// padded length. The batcher's padding rule is what this file configures:
//
//   * kPadToMax (the PR-2 baseline): one queue; a formed batch pads every
//     request to the LONGEST request in that batch.
//   * kLengthBucketed: requests are partitioned by length into buckets
//     with configurable upper edges; each bucket is its own FIFO queue
//     with its own (max_batch, max_wait_ticks) coalescing policy, and a
//     batch formed from bucket i pads every request to bucket i's edge.
//     Requests longer than the last edge land in an implicit OVERFLOW
//     bucket that pads to its own batch max (the pad-to-max rule), so no
//     admissible length is ever rejected by bucketing.
//
// Padding is SCHEDULING/ACCOUNTING-ONLY: a request always computes at its
// true length (padded slots never execute), so the payload of a request is
// identical under every mode x bucket-edge choice — the invariant
// tests/test_length_bucketing.cpp locks down bit-exactly. Degenerate case
// by construction: kLengthBucketed with an EMPTY bucket list has exactly
// one queue (the overflow bucket) padding to batch max under the global
// coalescing policy — indistinguishable from kPadToMax, accounting
// included.
#pragma once

#include <cstddef>
#include <cstdint>
#include <vector>

namespace star::serve {

/// How the dynamic batcher groups and pads variable-length requests.
enum class BatchingMode {
  kPadToMax,        ///< one queue, pad each batch to its own longest request
  kLengthBucketed,  ///< per-bucket queues, pad to the bucket edge
};

[[nodiscard]] const char* to_string(BatchingMode mode);

/// One length bucket: requests with seq_len <= edge (and above the
/// previous bucket's edge) queue and batch together, padded to `edge`.
struct LengthBucket {
  /// Upper bound (inclusive) on the sequence lengths of this bucket, and
  /// the padded length of every batch it forms. Must be >= 2 and strictly
  /// increasing across the bucket list.
  std::int64_t edge = 0;
  /// Per-bucket dispatch-size cap; 0 inherits the policy-wide max_batch.
  std::size_t max_batch = 0;
  /// Per-bucket age-out window; -1 inherits the policy-wide
  /// max_wait_ticks. Short buckets usually want a SHORT window (they fill
  /// fast and their requests are latency-cheap), long buckets a longer one.
  std::int64_t max_wait_ticks = -1;
};

/// The length-dimension configuration of the dynamic batcher. Defaults to
/// the pad-to-max baseline, so existing callers are unaffected.
struct LengthBucketing {
  BatchingMode mode = BatchingMode::kPadToMax;
  /// Strictly increasing bucket edges; consulted only in kLengthBucketed
  /// mode. Empty is legal and equals pad-to-max (see file comment).
  std::vector<LengthBucket> buckets;

  /// Throws InvalidArgument on non-increasing/undersized edges or
  /// malformed per-bucket overrides.
  void validate() const;

  /// Queues the batcher runs: buckets + the implicit overflow bucket in
  /// kLengthBucketed mode, exactly one in kPadToMax mode.
  [[nodiscard]] std::size_t num_queues() const;

  /// Queue index a request of `seq_len` tokens coalesces in: the first
  /// bucket whose edge admits it, else the overflow queue (== num_queues()
  /// - 1 in bucketed mode, always 0 in pad-to-max mode).
  [[nodiscard]] std::size_t bucket_of(std::int64_t seq_len) const;

  /// True when `queue` pads to its own batch max rather than a fixed edge
  /// (the pad-to-max queue and the bucketed overflow queue).
  [[nodiscard]] bool pads_to_batch_max(std::size_t queue) const;

  /// The padded slot length of a batch formed from `queue` whose longest
  /// member is `batch_max_len`: the bucket edge, or `batch_max_len` for
  /// the batch-max queues above.
  [[nodiscard]] std::int64_t padded_len(std::size_t queue,
                                        std::int64_t batch_max_len) const;

  /// The bucket edge reported for `queue` in stats (0 = pads to batch max).
  [[nodiscard]] std::int64_t edge_of(std::size_t queue) const;

  /// Effective per-queue coalescing knobs: the bucket's override when set,
  /// else the policy-wide value passed in.
  [[nodiscard]] std::size_t max_batch_for(std::size_t queue,
                                          std::size_t global_max_batch) const;
  [[nodiscard]] std::uint32_t max_wait_for(std::size_t queue,
                                           std::uint32_t global_wait) const;

  /// The PR-2 baseline: one queue, pad to batch max.
  static LengthBucketing pad_to_max();
  /// Bucketed mode with plain edges (no per-bucket overrides).
  static LengthBucketing bucketed(const std::vector<std::int64_t>& edges);
};

}  // namespace star::serve
