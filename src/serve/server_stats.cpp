#include "serve/server_stats.hpp"

#include <algorithm>
#include <cmath>
#include <numeric>

#include "util/contract.hpp"
#include "util/status.hpp"

namespace star::serve {

double percentile(const std::vector<double>& samples, double p) {
  require(p >= 0.0 && p <= 1.0, "percentile: p must be in [0, 1]");
  if (samples.empty()) {
    return 0.0;
  }
  // Nearest-rank: the smallest sample >= p of the distribution's mass.
  const auto rank = static_cast<std::size_t>(
      std::clamp(std::ceil(p * static_cast<double>(samples.size())) - 1.0, 0.0,
                 static_cast<double>(samples.size() - 1)));
  // Select through an index buffer rather than copying the reservoir:
  // snapshot() calls this twice per poll and the reservoir caps at
  // kMaxLatencySamples, so the two by-value copies were its whole cost.
  std::vector<std::uint32_t> idx(samples.size());
  std::iota(idx.begin(), idx.end(), 0u);
  std::nth_element(idx.begin(), idx.begin() + static_cast<std::ptrdiff_t>(rank),
                   idx.end(), [&samples](std::uint32_t a, std::uint32_t b) {
                     return samples[a] < samples[b];
                   });
  return samples[idx[rank]];
}

void StatsAccumulator::configure_buckets(std::vector<std::int64_t> edges) {
  require(!edges.empty(), "configure_buckets: at least one queue required");
  buckets_.clear();
  buckets_.reserve(edges.size());
  for (const std::int64_t e : edges) {
    BucketAccum b;
    b.edge = e;
    buckets_.push_back(b);
  }
}

StatsAccumulator::BucketAccum& StatsAccumulator::bucket_slot(std::size_t bucket) {
  // Out-of-layout buckets (a caller that never configured) fold into the
  // last slot rather than dropping the sample: conservation laws (sums
  // across buckets == totals) must hold unconditionally.
  return buckets_[std::min(bucket, buckets_.size() - 1)];
}

void StatsAccumulator::on_batch(std::size_t occupancy, std::size_t bucket,
                                std::uint64_t effective_tokens,
                                std::uint64_t padded_tokens,
                                std::uint64_t capacity_tokens) {
  // Token-ledger balance: a batch's real tokens fit inside its padded
  // rectangle, which fits inside the bucket's capacity (server_stats.hpp
  // documents effective <= padded <= capacity as an always-invariant).
  STAR_CONTRACT(effective_tokens <= padded_tokens,
                "token ledger: effective tokens exceed the padded rectangle");
  STAR_CONTRACT(padded_tokens <= capacity_tokens,
                "token ledger: padded rectangle exceeds bucket capacity");
  STAR_CONTRACT(occupancy >= 1, "token ledger: a dispatched batch is never empty");
  ++batches_;
  occupancy_sum_ += occupancy;
  occupancy_max_ = std::max(occupancy_max_, occupancy);
  effective_tokens_ += effective_tokens;
  padded_tokens_ += padded_tokens;
  capacity_tokens_ += capacity_tokens;
  BucketAccum& b = bucket_slot(bucket);
  ++b.batches;
  b.occupancy_sum += occupancy;
  b.effective_tokens += effective_tokens;
  b.padded_tokens += padded_tokens;
}

void StatsAccumulator::on_done(const RequestStats& rs, bool ok) {
  (ok ? completed_ : failed_) += 1;
  queue_wait_sum_s_ += rs.queue_wait_s;
  service_sum_s_ += rs.service_s;
  if (rs.num_layers >= 1) {
    ++shaped_requests_;
    num_layers_sum_ += static_cast<std::uint64_t>(rs.num_layers);
    num_layers_max_ = std::max(num_layers_max_, rs.num_layers);
    num_shards_sum_ += static_cast<std::uint64_t>(rs.num_shards);
    num_shards_max_ = std::max(num_shards_max_, rs.num_shards);
  }
  if (rs.seq_len >= 1) {
    seq_len_sum_ += static_cast<std::uint64_t>(rs.seq_len);
    seq_len_max_ = std::max(seq_len_max_, rs.seq_len);
  }
  BucketAccum& b = bucket_slot(rs.bucket);
  ++b.requests;
  b.queue_wait_sum_s += rs.queue_wait_s;
  lut_hits_ += rs.lut_hits;
  lut_misses_ += rs.lut_misses;
  weight_hits_ += rs.weight_hits;
  weight_misses_ += rs.weight_misses;
  programming_sum_us_ += rs.programming_us;
  transport_sum_us_ += rs.transport_us;
  const std::uint64_t seen = completed_ + failed_;
  if (queue_wait_s_.size() < kMaxLatencySamples) {
    queue_wait_s_.push_back(rs.queue_wait_s);
    service_s_.push_back(rs.service_s);
  } else {
    // Algorithm R: the reservoir stays a uniform sample of all `seen`
    // completions. The two vectors are replaced at the same slot so each
    // index remains one request's (queue_wait, service) pair.
    const auto j = static_cast<std::uint64_t>(reservoir_rng_.uniform_int(
        0, static_cast<std::int64_t>(seen) - 1));
    if (j < kMaxLatencySamples) {
      queue_wait_s_[static_cast<std::size_t>(j)] = rs.queue_wait_s;
      service_s_[static_cast<std::size_t>(j)] = rs.service_s;
    }
  }
}

void audit_reservoir_pair(const std::vector<double>& queue_wait,
                          const std::vector<double>& service,
                          std::uint64_t done) {
  STAR_CONTRACT(queue_wait.size() == service.size(),
                "latency reservoirs: queue-wait and service must stay "
                "index-paired (one slot per resolved request)");
  STAR_CONTRACT(queue_wait.size() <= StatsAccumulator::kMaxLatencySamples,
                "latency reservoirs: reservoir overflowed its fixed bound");
  STAR_CONTRACT(queue_wait.size() <= done,
                "latency reservoirs: more samples than resolved requests");
}

ServerStats StatsAccumulator::snapshot() const {
  // Admission-queue conservation at snapshot time (see the ServerStats
  // docstring): every submit was admitted, rejected, or is still blocked;
  // every admitted request resolved (completed/failed), was shed, or is
  // still pending — so the resolved-side sums can never exceed the
  // upstream counters.
  STAR_CONTRACT(admitted_ + rejected_ <= submitted_,
                "admission conservation: admitted + rejected exceed submitted");
  STAR_CONTRACT(completed_ + failed_ + shed_ <= admitted_,
                "admission conservation: resolved + shed requests exceed admitted");
  audit_reservoir_pair(queue_wait_s_, service_s_, completed_ + failed_);
  if constexpr (contracts_enabled()) {
    // Bucket-sum conservation: the per-queue ledgers partition the totals
    // exactly (bucket_slot folds out-of-layout samples into the last slot
    // precisely so these sums hold unconditionally).
    std::uint64_t requests = 0, batches = 0, effective = 0, padded = 0;
    for (const BucketAccum& b : buckets_) {
      requests += b.requests;
      batches += b.batches;
      effective += b.effective_tokens;
      padded += b.padded_tokens;
    }
    STAR_CONTRACT(requests == completed_ + failed_,
                  "bucket conservation: per-bucket requests must sum to total");
    STAR_CONTRACT(batches == batches_,
                  "bucket conservation: per-bucket batches must sum to total");
    STAR_CONTRACT(effective == effective_tokens_ && padded == padded_tokens_,
                  "bucket conservation: per-bucket token ledgers must sum to total");
  }
  ServerStats s;
  s.submitted = submitted_;
  s.admitted = admitted_;
  s.rejected = rejected_;
  s.shed = shed_;
  s.completed = completed_;
  s.failed = failed_;
  s.batches = batches_;
  const std::uint64_t done = completed_ + failed_;
  s.queue_wait_mean_s =
      done == 0 ? 0.0 : queue_wait_sum_s_ / static_cast<double>(done);
  s.queue_wait_p99_s = percentile(queue_wait_s_, 0.99);
  s.service_mean_s =
      done == 0 ? 0.0 : service_sum_s_ / static_cast<double>(done);
  s.service_p99_s = percentile(service_s_, 0.99);
  s.batch_occupancy_mean =
      batches_ == 0 ? 0.0
                    : static_cast<double>(occupancy_sum_) /
                          static_cast<double>(batches_);
  s.batch_occupancy_max = occupancy_max_;
  s.effective_tokens = effective_tokens_;
  s.padded_tokens = padded_tokens_;
  s.capacity_tokens = capacity_tokens_;
  if (capacity_tokens_ > 0) {
    s.padded_occupancy = static_cast<double>(padded_tokens_) /
                         static_cast<double>(capacity_tokens_);
    s.effective_occupancy = static_cast<double>(effective_tokens_) /
                            static_cast<double>(capacity_tokens_);
  }
  if (padded_tokens_ > 0) {
    s.padding_waste = 1.0 - static_cast<double>(effective_tokens_) /
                                static_cast<double>(padded_tokens_);
  }
  if (done > 0) {
    s.seq_len_mean = static_cast<double>(seq_len_sum_) / static_cast<double>(done);
  }
  s.seq_len_max = seq_len_max_;
  s.per_bucket.reserve(buckets_.size());
  for (const BucketAccum& b : buckets_) {
    ServerStats::BucketStats out;
    out.edge = b.edge;
    out.requests = b.requests;
    out.batches = b.batches;
    out.queue_wait_mean_s =
        b.requests == 0 ? 0.0
                        : b.queue_wait_sum_s / static_cast<double>(b.requests);
    out.batch_occupancy_mean =
        b.batches == 0 ? 0.0
                       : static_cast<double>(b.occupancy_sum) /
                             static_cast<double>(b.batches);
    out.effective_tokens = b.effective_tokens;
    out.padded_tokens = b.padded_tokens;
    out.padding_waste =
        b.padded_tokens == 0
            ? 0.0
            : 1.0 - static_cast<double>(b.effective_tokens) /
                        static_cast<double>(b.padded_tokens);
    s.per_bucket.push_back(out);
  }
  if (shaped_requests_ > 0) {
    const auto shaped = static_cast<double>(shaped_requests_);
    s.num_layers_mean = static_cast<double>(num_layers_sum_) / shaped;
    s.num_shards_mean = static_cast<double>(num_shards_sum_) / shaped;
  }
  s.num_layers_max = num_layers_max_;
  s.num_shards_max = num_shards_max_;
  s.lut_hits = lut_hits_;
  s.lut_misses = lut_misses_;
  s.weight_hits = weight_hits_;
  s.weight_misses = weight_misses_;
  s.programming_us_total = programming_sum_us_;
  const double programming_s = programming_sum_us_ * 1e-6;
  s.programming_time_share =
      programming_s > 0.0 ? programming_s / (service_sum_s_ + programming_s)
                          : 0.0;
  s.transport_us_total = transport_sum_us_;
  s.transport_us_mean =
      done == 0 ? 0.0 : transport_sum_us_ / static_cast<double>(done);
  return s;
}

}  // namespace star::serve
