// Cluster-scale serving: a residency-aware multi-chip router.
//
// One simulated STAR chip is not "millions of users". serve::Cluster owns N
// independent NODE instances — each a full serving engine with its own
// core::BatchEncoderSim (and therefore its own xbar::ResidencyManager), its
// own sim::BatchScheduler worker pool and its own StarServer dynamic
// batcher — behind the same single-request submit() -> std::future front
// end StarServer exposes. A pluggable RoutingPolicy decides which node each
// request lands on:
//
//   * round-robin   — node (i mod N): perfect long-run balance, blind to
//     state.
//   * least-loaded  — the node with the shallowest pending queue at submit
//     time (queue-depth snapshot; ties break to the lowest node index).
//   * affinity      — the node whose residency cache already holds the
//     request's dataset LUT/CAM image, so steady mixed-dataset traffic
//     stops paying reprogramming churn. Load-imbalance escape hatch: when
//     every resident node's queue is more than `affinity_max_imbalance`
//     requests deeper than the shallowest queue in the fleet (or no node
//     holds the image yet), the policy falls back to least-loaded — trading
//     a cold programming miss for balance, the tension this router exists
//     to measure.
//
// The front-end -> node hop is an explicit hw::HostLink transport cost (per
// request: request payload down + response payload back), billed into
// RequestStats.transport_us and the fleet ClusterStats — the same move
// hw::HTree made for the intra-chip interconnect. Like residency and
// sharding, transport and routing are ACCOUNTING-ONLY and therefore
// payload-invariant by construction.
//
// Determinism contract (inherited, per node): every node's model is
// constructed from the same (StarConfig, BertConfig, weight_seed,
// stack_depth), so a response payload depends ONLY on (request payload,
// run_seed) — never on the routing policy, the node count, the thread
// count, or which node actually served it. Every response is bit-identical
// to a solo closed-batch run via the workload::sequence_seed rule
// (tests/test_cluster.cpp pins this across policy x nodes x threads).
#pragma once

#include <cstddef>
#include <cstdint>
#include <future>
#include <memory>
#include <mutex>
#include <optional>
#include <string_view>
#include <vector>

#include "core/batch_encoder.hpp"
#include "hw/interconnect.hpp"
#include "serve/request.hpp"
#include "serve/server_stats.hpp"
#include "serve/star_server.hpp"
#include "sim/batch_scheduler.hpp"

namespace star::serve {

/// The built-in routing policies (a custom RoutingPolicy can be injected
/// through the Cluster constructor instead).
enum class RoutePolicyKind {
  kRoundRobin,
  kLeastLoaded,
  kAffinity,
};

[[nodiscard]] const char* to_string(RoutePolicyKind kind);
/// Parse "rr" / "least-loaded" / "affinity" (the bench flag spellings).
[[nodiscard]] std::optional<RoutePolicyKind> parse_route_policy(
    std::string_view name);

/// What the router knows about one node at routing time. `queue_depth` is
/// the node's pending-queue snapshot (admitted, not yet dispatched);
/// `lut_resident` is whether the node's residency cache currently holds the
/// request's dataset LUT/CAM image (always true for Dataset::kDefault —
/// every node installs its configured format at construction).
struct NodeSnapshot {
  std::size_t node = 0;
  std::size_t queue_depth = 0;
  bool lut_resident = false;
};

/// A routing decision: given the per-node snapshots for one request, pick
/// the node it is submitted to. Called under the cluster's routing lock
/// (implementations may keep unsynchronised state); `nodes` is never empty
/// and the returned index must be < nodes.size().
class RoutingPolicy {
 public:
  virtual ~RoutingPolicy() = default;
  [[nodiscard]] virtual std::size_t route(
      const std::vector<NodeSnapshot>& nodes) = 0;
};

/// Build one of the built-in policies. `affinity_max_imbalance` is the
/// escape-hatch threshold of the affinity policy (ignored by the others):
/// a resident node may be at most this many requests deeper than the
/// fleet's shallowest queue before balance wins over residency.
[[nodiscard]] std::unique_ptr<RoutingPolicy> make_route_policy(
    RoutePolicyKind kind, std::size_t affinity_max_imbalance = 8);

struct ClusterOptions {
  /// Chip/node instances behind the front end.
  std::size_t num_nodes = 1;
  /// Worker threads of each node's BatchScheduler pool (the
  /// sim::BatchScheduler convention: 0 = hardware concurrency).
  int threads_per_node = 1;
  /// Which built-in policy routes requests (unless a custom RoutingPolicy
  /// is passed to the constructor).
  RoutePolicyKind policy = RoutePolicyKind::kRoundRobin;
  /// Affinity escape hatch: max queue-depth gap (vs the fleet minimum) a
  /// resident node may have before the request routes by load instead.
  std::size_t affinity_max_imbalance = 8;
  /// Per-node admission/batcher configuration; node_id is overwritten per
  /// node (0..N-1).
  ServerOptions server{};
  /// The front-end -> node transport model. Default: free (a
  /// default-constructed HostLink), the single-chip legacy accounting;
  /// hw::HostLink::host_default() is the representative board fabric.
  hw::HostLink link{};
  /// Per-node model construction parameters (every node gets the SAME
  /// model — that is what makes routing payload-invariant).
  std::uint64_t weight_seed = 0xB127;
  std::int64_t stack_depth = 1;
};

/// Fleet-wide snapshot: per-node ServerStats plus merged totals. Counters
/// are exact sums; means are completion-weighted merges of exact sums; the
/// wait/service p99s are nearest-rank percentiles over the CONCATENATED
/// per-node latency reservoirs (see the fleet-merge notes on
/// serve::StatsAccumulator — never an average of per-node p99s).
struct ClusterStats {
  std::size_t num_nodes = 0;

  // Fleet admission/completion totals (sums over nodes; the conservation
  // law fleet == sum(per_node) is pinned by tests/test_cluster.cpp).
  std::uint64_t submitted = 0;
  std::uint64_t admitted = 0;
  std::uint64_t rejected = 0;
  std::uint64_t shed = 0;
  std::uint64_t completed = 0;
  std::uint64_t failed = 0;
  std::uint64_t batches = 0;

  // Fleet latency view (merged as documented above).
  double queue_wait_mean_s = 0.0;
  double queue_wait_p99_s = 0.0;
  double service_mean_s = 0.0;
  double service_p99_s = 0.0;

  // Fleet occupancy (token sums across nodes, same semantics as
  // ServerStats).
  double batch_occupancy_mean = 0.0;
  std::uint64_t effective_tokens = 0;
  std::uint64_t padded_tokens = 0;
  std::uint64_t capacity_tokens = 0;
  double effective_occupancy = 0.0;
  double padded_occupancy = 0.0;
  double padding_waste = 0.0;

  // Fleet residency: the routing policy's target metric. Affinity exists
  // to shrink lut_misses/programming_us_total relative to round-robin on
  // mixed-dataset traffic.
  std::uint64_t lut_hits = 0;
  std::uint64_t lut_misses = 0;
  std::uint64_t weight_hits = 0;
  std::uint64_t weight_misses = 0;
  double programming_us_total = 0.0;

  // Front-end transport (hw::HostLink round trips billed by the router).
  double transport_us_total = 0.0;
  double transport_us_mean = 0.0;
  double transport_energy_uj_total = 0.0;

  // Fleet analytic cost-cache ledger: sums of the per-node model caches
  // (one core::CostCache per node — caches are chip-local, like residency).
  // hit_rate = fleet hits / fleet lookups.
  std::uint64_t cost_cache_lookups = 0;
  std::uint64_t cost_cache_hits = 0;
  std::uint64_t cost_cache_misses = 0;
  std::uint64_t cost_cache_bypasses = 0;
  double cost_cache_hit_rate = 0.0;

  // Router view: how many submits each node received and how uneven that
  // is (max node share / mean share; 1.0 = perfectly even, 0 when empty).
  std::vector<std::uint64_t> routed_per_node;
  double routing_imbalance = 0.0;

  std::vector<ServerStats> per_node;
};

class Cluster {
 public:
  /// Stands up `opts.num_nodes` full node instances (model + scheduler +
  /// server each). `policy` overrides opts.policy when non-null — the
  /// pluggable-routing hook.
  Cluster(const core::StarConfig& cfg, const nn::BertConfig& bert,
          ClusterOptions opts, std::unique_ptr<RoutingPolicy> policy = nullptr);
  ~Cluster();  ///< shutdown(): every admitted future resolves first

  Cluster(const Cluster&) = delete;
  Cluster& operator=(const Cluster&) = delete;

  /// Route one request and submit it to its node. Same future semantics as
  /// StarServer::submit: admission failures travel through the future. The
  /// router stamps the transport bill into the request before submission;
  /// RequestStats.node records where it landed.
  [[nodiscard]] std::future<EncoderResponse> submit(EncoderRequest req);
  [[nodiscard]] std::future<AttentionResponse> submit(AttentionRequest req);
  [[nodiscard]] std::future<AnalyticResponse> submit(AnalyticRequest req);

  /// Block until every node has drained (no pending work anywhere).
  void drain();
  /// Stop admitting on every node and join their batchers. Idempotent.
  void shutdown();

  [[nodiscard]] ClusterStats stats() const;
  [[nodiscard]] std::size_t num_nodes() const { return nodes_.size(); }
  [[nodiscard]] const StarServer& node(std::size_t i) const;
  [[nodiscard]] const core::BatchEncoderSim& node_model(std::size_t i) const;
  [[nodiscard]] const ClusterOptions& options() const { return opts_; }
  /// Submits routed to each node so far (index == node id).
  [[nodiscard]] std::vector<std::uint64_t> routed_per_node() const;

 private:
  struct Node {
    std::unique_ptr<core::BatchEncoderSim> model;
    std::unique_ptr<sim::BatchScheduler> sched;
    std::unique_ptr<StarServer> server;
  };

  struct RouteDecision {
    std::size_t node = 0;
    double transport_us = 0.0;
  };
  /// Snapshot the fleet, pick a node, and bill the round-trip transport of
  /// `payload_bytes` down + `response_bytes` back across opts_.link — all
  /// under route_mu_, so stateful policies, the routed_ counters and the
  /// link-energy ledger stay consistent. `dataset` drives the lut_resident
  /// flags of the snapshots.
  [[nodiscard]] RouteDecision route_and_bill(workload::Dataset dataset,
                                             std::uint64_t payload_bytes,
                                             std::uint64_t response_bytes);

  ClusterOptions opts_;
  std::vector<Node> nodes_;
  std::unique_ptr<RoutingPolicy> policy_;
  mutable std::mutex route_mu_;
  std::vector<std::uint64_t> routed_;
  double transport_energy_uj_ = 0.0;  ///< fleet link energy (router-billed)
};

}  // namespace star::serve
